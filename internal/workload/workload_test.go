package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lifetime"
)

func TestFigure1MatchesPaper(t *testing.T) {
	set := Figure1()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.MaxDensity() != 3 {
		t.Fatalf("density %d, paper says 3", set.MaxDensity())
	}
	regions := set.MaxDensityRegions()
	if len(regions) != 2 {
		t.Fatalf("regions %v", regions)
	}
	if regions[0].StartStep() != 2 || regions[0].EndStep() != 3 ||
		regions[1].StartStep() != 5 || regions[1].EndStep() != 6 {
		t.Fatalf("region steps %v, paper says 2-3 and 5-6", regions)
	}
	// c and d are read after step 7 by another task.
	for _, v := range []string{"c", "d"} {
		if l := set.ByVar(v); !l.External {
			t.Errorf("%s should be external", v)
		}
	}
}

func TestFigure1MemoryAccessTimes(t *testing.T) {
	for _, step := range []int{1, 3, 5, 7} {
		if !Figure1Memory.Accessible(step) {
			t.Errorf("step %d should be accessible (paper: times 1,3,5)", step)
		}
	}
	for _, step := range []int{2, 4, 6} {
		if Figure1Memory.Accessible(step) {
			t.Errorf("step %d should be inaccessible", step)
		}
	}
}

func TestFigure3CompatibilityStructure(t *testing.T) {
	set := Figure3()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.MaxDensity() != 2 {
		t.Fatalf("density %d, want 2", set.MaxDensity())
	}
	compat := func(v1, v2 string) bool {
		return set.ByVar(v1).EndPoint() < set.ByVar(v2).StartPoint()
	}
	// Every pair from the printed arc table must be compatible.
	for _, pair := range [][2]string{{"a", "b"}, {"a", "f"}, {"e", "b"}, {"e", "f"}, {"b", "c"}, {"d", "e"}} {
		if !compat(pair[0], pair[1]) {
			t.Errorf("printed arc %s->%s not realisable", pair[0], pair[1])
		}
	}
	// f->b is NOT an arc in Figure 3 (it appears only in Figure 4).
	if compat("f", "b") {
		t.Error("f->b should overlap in Figure 3")
	}
}

func TestFigure3HammingTable(t *testing.T) {
	h := Figure3Hamming()
	cases := map[[2]string]float64{
		{"a", "b"}: 0.2, {"a", "f"}: 0.5, {"e", "b"}: 0.6,
		{"e", "f"}: 0.3, {"b", "c"}: 0.8, {"d", "e"}: 0.1,
	}
	for pair, want := range cases {
		if got := h(pair[0], pair[1]); got != want {
			t.Errorf("H(%s,%s)=%g, want %g", pair[0], pair[1], got, want)
		}
	}
	if h("", "a") != 0.5 {
		t.Error("initial state should be 0.5 (paper Figure 3)")
	}
	if h("z", "q") != 0.5 {
		t.Error("unlisted pairs default to 0.5")
	}
}

func TestFigure4AddsFB(t *testing.T) {
	set := Figure4()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.ByVar("f").EndPoint() >= set.ByVar("b").StartPoint() {
		t.Fatal("Figure 4 requires the f->b compatibility")
	}
	h := Figure4Hamming()
	if h("f", "b") != 0.5 {
		t.Fatalf("H(f,b)=%g, want 0.5", h("f", "b"))
	}
	if h("a", "b") != 0.2 {
		t.Fatal("Figure 3 entries must carry over")
	}
}

func TestRSPDensity26(t *testing.T) {
	set, s, err := RSP(DefaultRSP)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := set.MaxDensity(); got != 26 {
		t.Fatalf("max density %d, paper's industrial example has 26", got)
	}
	if len(set.Lifetimes) < 50 {
		t.Fatalf("RSP too small: %d variables", len(set.Lifetimes))
	}
}

func TestRSPBlockValidates(t *testing.T) {
	b, err := RSPBlock(DefaultRSP)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Outputs) == 0 || len(b.Inputs) == 0 {
		t.Fatal("RSP block should have boundary variables")
	}
}

func TestRSPParamValidation(t *testing.T) {
	if _, err := RSPBlock(RSPParams{Taps: 1, Butterflies: 1}); err == nil {
		t.Error("1 tap accepted")
	}
	if _, err := RSPBlock(RSPParams{Taps: 4, Butterflies: 0}); err == nil {
		t.Error("0 butterflies accepted")
	}
}

func TestRSPOddTapsAccumulate(t *testing.T) {
	// Odd tap counts exercise the odd-leaf path of the accumulation tree.
	set, _, err := RSP(RSPParams{Taps: 3, Butterflies: 1, ALUs: 2, Multipliers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLocationsDemoValid(t *testing.T) {
	if err := LocationsDemo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set, err := Random(rng, RandomParams{
			Vars: 1 + rng.Intn(20), Steps: 2 + rng.Intn(20), MaxReads: 1 + rng.Intn(4),
			ExternalFrac: rng.Float64(), InputFrac: rng.Float64(),
		})
		return err == nil && set.Validate() == nil && len(set.Lifetimes) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	p := RandomParams{Vars: 6, Steps: 9, MaxReads: 2, ExternalFrac: 0.3, InputFrac: 0.3}
	a := MustRandom(rand.New(rand.NewSource(7)), p)
	b := MustRandom(rand.New(rand.NewSource(7)), p)
	if len(a.Lifetimes) != len(b.Lifetimes) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Lifetimes {
		la, lb := a.Lifetimes[i], b.Lifetimes[i]
		if la.Var != lb.Var || la.Write != lb.Write || len(la.Reads) != len(lb.Reads) {
			t.Fatalf("instance differs at %d: %+v vs %+v", i, la, lb)
		}
	}
}

func TestRandomRejectsBadParams(t *testing.T) {
	if _, err := Random(rand.New(rand.NewSource(1)), RandomParams{Vars: 0, Steps: 5}); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := RandomProgram(rand.New(rand.NewSource(1)), 0); err == nil {
		t.Fatal("bad program size accepted")
	}
}

func TestRandomProgramValid(t *testing.T) {
	prog, err := RandomProgram(rand.New(rand.NewSource(3)), 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

var _ = lifetime.FullSpeed // keep the import for documentation-side tests
