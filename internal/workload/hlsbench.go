package workload

import (
	"fmt"

	"repro/internal/ir"
)

// The classic high-level-synthesis benchmark kernels of the paper's era
// (DAC/ICCAD '90s suites): the fifth-order elliptic wave filter, the AR
// lattice filter and an 8-point one-dimensional DCT. All are straight-line
// dataflow — exactly the "scheduled basic block" shape the allocator
// consumes — with the register pressure profiles the literature used to
// stress allocators.

// EllipticWaveFilter returns the fifth-order elliptic wave filter (EWF): 26
// additions and 8 multiplications over 8 state variables, the most-used HLS
// scheduling benchmark of the period.
func EllipticWaveFilter() (*ir.Block, error) {
	b := &ir.Block{Name: "ewf"}
	// Inputs: the sample and the filter state (sv2, sv13, sv18, sv26, sv33,
	// sv38, sv39) plus the two coefficient ports used multiplicatively.
	b.Inputs = []string{"inp", "sv2", "sv13", "sv18", "sv26", "sv33", "sv38", "sv39", "c1", "c2"}
	add := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpAdd, Dst: dst, Src: []string{a, bb}})
	}
	mul := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMul, Dst: dst, Src: []string{a, bb}})
	}
	// The EWF dataflow reconstructed in its characteristic shape: three
	// parallel second-order ladder branches feeding a merge chain, plus the
	// state-update adders — 34 operations (26 additions, 8 coefficient
	// multiplications), critical path ≈ 16 single-cycle steps.
	add("a1", "inp", "sv2")
	mul("a2", "a1", "c1")
	add("a3", "a2", "sv13")
	mul("a4", "a3", "c2")
	add("a5", "a4", "sv18")
	add("b1", "inp", "sv26")
	mul("b2", "b1", "c1")
	add("b3", "b2", "sv33")
	mul("b4", "b3", "c2")
	add("b5", "b4", "sv38")
	add("cc1", "sv39", "sv2")
	mul("cc2", "cc1", "c1")
	add("cc3", "cc2", "sv33")
	mul("cc4", "cc3", "c2")
	add("cc5", "cc4", "sv26")
	add("m1", "a5", "b5")
	add("m2", "m1", "cc5")
	mul("m3", "m2", "c1")
	add("m4", "m3", "a3")
	add("m5", "m4", "b3")
	mul("m6", "m5", "c2")
	add("m7", "m6", "cc3")
	add("outp", "m7", "m2")
	add("u1", "a5", "m3")
	add("u2", "b5", "m3")
	add("u3", "cc5", "m6")
	add("u4", "a4", "m6")
	add("u5", "b4", "m7")
	add("u6", "cc4", "m7")
	add("u7", "u1", "u2")
	add("u8", "u3", "u4")
	add("u9", "u5", "u6")
	add("u10", "u7", "u8")
	add("y2", "u9", "u10")
	b.Outputs = []string{"outp", "y2"}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: ewf: %w", err)
	}
	return b, nil
}

// ARFilter returns the auto-regressive lattice filter benchmark: 16
// multiplications and 12 additions in a ladder structure.
func ARFilter() (*ir.Block, error) {
	b := &ir.Block{Name: "arf"}
	for i := 0; i < 4; i++ {
		b.Inputs = append(b.Inputs, fmt.Sprintf("x%d", i), fmt.Sprintf("k%d", i), fmt.Sprintf("k%d_", i))
	}
	add := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpAdd, Dst: dst, Src: []string{a, bb}})
	}
	mul := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMul, Dst: dst, Src: []string{a, bb}})
	}
	// Four lattice stages: each mixes the forward and backward signals with
	// the stage's reflection coefficients.
	fwd, bwd := "x0", "x1"
	for i := 0; i < 4; i++ {
		k, k2 := fmt.Sprintf("k%d", i), fmt.Sprintf("k%d_", i)
		m1 := fmt.Sprintf("m%da", i)
		m2 := fmt.Sprintf("m%db", i)
		m3 := fmt.Sprintf("m%dc", i)
		m4 := fmt.Sprintf("m%dd", i)
		mul(m1, fwd, k)
		mul(m2, bwd, k2)
		mul(m3, fwd, k2)
		mul(m4, bwd, k)
		f := fmt.Sprintf("f%d", i)
		g := fmt.Sprintf("g%d", i)
		add(f, m1, m2)
		add(g, m3, m4)
		if i < 2 {
			// Inject the remaining inputs into the ladder.
			fwd2 := fmt.Sprintf("fin%d", i)
			add(fwd2, f, fmt.Sprintf("x%d", i+2))
			fwd, bwd = fwd2, g
		} else {
			fwd, bwd = f, g
		}
	}
	add("y", fwd, bwd)
	b.Outputs = []string{"y", "f3", "g3"}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: arf: %w", err)
	}
	return b, nil
}

// FDCT8 returns an 8-point one-dimensional forward DCT (Loeffler-style
// butterfly structure): 11 multiplications and 29 additions/subtractions.
func FDCT8() (*ir.Block, error) {
	b := &ir.Block{Name: "fdct8"}
	for i := 0; i < 8; i++ {
		b.Inputs = append(b.Inputs, fmt.Sprintf("s%d", i))
	}
	b.Inputs = append(b.Inputs, "ca", "cb", "cc", "cd", "ce")
	add := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpAdd, Dst: dst, Src: []string{a, bb}})
	}
	sub := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpSub, Dst: dst, Src: []string{a, bb}})
	}
	mul := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMul, Dst: dst, Src: []string{a, bb}})
	}
	// Stage 1: butterflies.
	add("a0", "s0", "s7")
	add("a1", "s1", "s6")
	add("a2", "s2", "s5")
	add("a3", "s3", "s4")
	sub("b0", "s0", "s7")
	sub("b1", "s1", "s6")
	sub("b2", "s2", "s5")
	sub("b3", "s3", "s4")
	// Stage 2: even part.
	add("e0", "a0", "a3")
	add("e1", "a1", "a2")
	sub("e2", "a0", "a3")
	sub("e3", "a1", "a2")
	add("y0", "e0", "e1")
	sub("y4", "e0", "e1")
	mul("p0", "e2", "ca")
	mul("p1", "e3", "cb")
	add("y2", "p0", "p1")
	mul("p2", "e2", "cb")
	mul("p3", "e3", "ca")
	sub("y6", "p2", "p3")
	// Stage 2: odd part (rotations).
	mul("q0", "b0", "cc")
	mul("q1", "b3", "cd")
	add("r0", "q0", "q1")
	mul("q2", "b1", "ce")
	mul("q3", "b2", "ce")
	add("r1", "q2", "q3")
	sub("r2", "q2", "q3")
	mul("q4", "b0", "cd")
	mul("q5", "b3", "cc")
	sub("r3", "q4", "q5")
	add("y1", "r0", "r1")
	sub("y7", "r3", "r2")
	add("y5", "r3", "r2")
	sub("y3", "r0", "r1")
	b.Outputs = []string{"y0", "y1", "y2", "y3", "y4", "y5", "y6", "y7"}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: fdct8: %w", err)
	}
	return b, nil
}

// HLSBenchmarks lists the named benchmark constructors.
func HLSBenchmarks() map[string]func() (*ir.Block, error) {
	return map[string]func() (*ir.Block, error){
		"ewf":   EllipticWaveFilter,
		"arf":   ARFilter,
		"fdct8": FDCT8,
	}
}
