package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/lifetime"
)

// RandomParams sizes Random instances.
type RandomParams struct {
	Vars  int
	Steps int
	// MaxReads bounds the reads per variable (≥1).
	MaxReads int
	// ExternalFrac is the probability a variable is read by a later task.
	ExternalFrac float64
	// InputFrac is the probability a variable is a block input.
	InputFrac float64
}

// Random generates a valid random lifetime set, deterministic in the rng.
// Used by property tests and scaling benchmarks.
func Random(rng *rand.Rand, p RandomParams) *lifetime.Set {
	if p.Vars <= 0 || p.Steps < 2 {
		panic(fmt.Sprintf("workload: bad random params %+v", p))
	}
	if p.MaxReads < 1 {
		p.MaxReads = 1
	}
	set := &lifetime.Set{Steps: p.Steps}
	for i := 0; i < p.Vars; i++ {
		l := lifetime.Lifetime{Var: fmt.Sprintf("v%02d", i)}
		if rng.Float64() < p.InputFrac {
			l.Input = true
			l.Write = 0
		} else {
			l.Write = 1 + rng.Intn(p.Steps-1)
		}
		nReads := 1 + rng.Intn(p.MaxReads)
		external := rng.Float64() < p.ExternalFrac
		// Reads strictly after the write; the last internal read at most
		// Steps.
		lo := l.Write + 1
		seen := map[int]bool{}
		for r := 0; r < nReads; r++ {
			step := lo + rng.Intn(p.Steps-lo+1)
			if !seen[step] {
				seen[step] = true
				l.Reads = append(l.Reads, step)
			}
		}
		if len(l.Reads) == 0 {
			l.Reads = []int{lo}
		}
		sortInts(l.Reads)
		if external {
			l.External = true
			l.Reads = append(l.Reads, p.Steps+1)
		}
		set.Lifetimes = append(set.Lifetimes, l)
	}
	if err := set.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generated invalid set: %v", err))
	}
	return set
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
