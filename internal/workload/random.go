package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/lifetime"
)

// RandomParams sizes Random instances.
type RandomParams struct {
	Vars  int
	Steps int
	// MaxReads bounds the reads per variable (≥1).
	MaxReads int
	// ExternalFrac is the probability a variable is read by a later task.
	ExternalFrac float64
	// InputFrac is the probability a variable is a block input.
	InputFrac float64
}

// Random generates a valid random lifetime set, deterministic in the rng.
// It returns an error for unusable parameters (Vars ≤ 0 or Steps < 2) or if
// the generated set fails its own validation. Used by property tests and
// scaling benchmarks.
func Random(rng *rand.Rand, p RandomParams) (*lifetime.Set, error) {
	if p.Vars <= 0 || p.Steps < 2 {
		return nil, fmt.Errorf("workload: bad random params %+v", p)
	}
	if p.MaxReads < 1 {
		p.MaxReads = 1
	}
	set := &lifetime.Set{Steps: p.Steps}
	for i := 0; i < p.Vars; i++ {
		l := lifetime.Lifetime{Var: fmt.Sprintf("v%02d", i)}
		if rng.Float64() < p.InputFrac {
			l.Input = true
			l.Write = 0
		} else {
			l.Write = 1 + rng.Intn(p.Steps-1)
		}
		nReads := 1 + rng.Intn(p.MaxReads)
		external := rng.Float64() < p.ExternalFrac
		// Reads strictly after the write; the last internal read at most
		// Steps.
		lo := l.Write + 1
		seen := map[int]bool{}
		for r := 0; r < nReads; r++ {
			step := lo + rng.Intn(p.Steps-lo+1)
			if !seen[step] {
				seen[step] = true
				l.Reads = append(l.Reads, step)
			}
		}
		if len(l.Reads) == 0 {
			l.Reads = []int{lo}
		}
		sortInts(l.Reads)
		if external {
			l.External = true
			l.Reads = append(l.Reads, p.Steps+1)
		}
		set.Lifetimes = append(set.Lifetimes, l)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid set: %w", err)
	}
	return set, nil
}

// MustRandom is Random that panics on error; for use in tests and benchmarks
// with known-good parameters.
func MustRandom(rng *rand.Rand, p RandomParams) *lifetime.Set {
	set, err := Random(rng, p)
	if err != nil {
		panic(err)
	}
	return set
}

// RandomProgram emits a valid random straight-line block as a one-task
// program: every instruction reads previously defined values, and every
// value is eventually read or exported as a block output. Deterministic in
// the rng; n is the instruction count.
func RandomProgram(rng *rand.Rand, n int) (*ir.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: random program needs n > 0, got %d", n)
	}
	b := &ir.Block{Name: "rand0", Inputs: []string{"i0", "i1", "i2"}}
	avail := append([]string(nil), b.Inputs...)
	read := make(map[string]bool)
	for k := 0; k < n; k++ {
		dst := fmt.Sprintf("t%02d", k)
		op := ir.OpAdd
		switch rng.Intn(4) {
		case 0:
			op = ir.OpMul
		case 1:
			op = ir.OpSub
		}
		s1 := avail[rng.Intn(len(avail))]
		s2 := avail[rng.Intn(len(avail))]
		b.Instrs = append(b.Instrs, ir.Instr{Op: op, Dst: dst, Src: []string{s1, s2}})
		read[s1], read[s2] = true, true
		avail = append(avail, dst)
	}
	for _, in := range b.Instrs {
		if !read[in.Dst] {
			b.Outputs = append(b.Outputs, in.Dst)
		}
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid block: %w", err)
	}
	return &ir.Program{Tasks: []*ir.Task{{Name: "random", Blocks: []*ir.Block{b}}}}, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
