package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// figureTACs are small fixed TAC programs in the spirit of the paper's
// running figures: straight-line kernels a few control steps long whose
// lifetime structure exercises chaining, write-backs and external outputs.
// They give the serving load driver (cmd/leaload) a stable "figures"
// workload class whose shapes repeat exactly, the warm-cache best case.
var figureTACs = map[string]string{
	"fig1-chain": `task fig1
block chain
in a b
c = a + b
d = a * c
e = c + d
f = d - e
out e f
end
`,
	"fig3-pair": `task fig3
block pair
in x y
u = x * y
v = x + u
w = u - y
z = v + w
out z
end
`,
	"fig4-diamond": `task fig4
block diamond
in p q r
s = p + q
t = q * r
u = s + t
v = s - t
x = u * v
out x
end
`,
}

// ProgramClasses names the serving workload classes in deterministic order.
func ProgramClasses() []string { return []string{"random", "hlsbench", "figures"} }

// Programs builds the serving workload corpus: named TAC programs grouped
// into the three classes the load driver mixes.
//
//   - "random":   randomShapes distinct RandomProgram instances (deterministic
//     in rng), each n instructions long;
//   - "hlsbench": the S31 high-level-synthesis suite (EWF, AR filter, FDCT8)
//     wrapped into single-block programs;
//   - "figures":  the fixed figure-style kernels above.
//
// Every program validates before being returned.
func Programs(rng *rand.Rand, randomShapes, n int) (map[string][]*ir.Program, error) {
	if randomShapes < 1 {
		randomShapes = 1
	}
	if n < 1 {
		n = 12
	}
	out := make(map[string][]*ir.Program, 3)
	for i := 0; i < randomShapes; i++ {
		p, err := RandomProgram(rng, n)
		if err != nil {
			return nil, fmt.Errorf("workload: random shape %d: %w", i, err)
		}
		// Distinct task names keep the shapes distinguishable in reports.
		p.Tasks[0].Name = fmt.Sprintf("random%02d", i)
		out["random"] = append(out["random"], p)
	}
	for _, name := range []string{"ewf", "arf", "fdct8"} {
		mk := HLSBenchmarks()[name]
		if mk == nil {
			return nil, fmt.Errorf("workload: HLS benchmark %q missing", name)
		}
		b, err := mk()
		if err != nil {
			return nil, fmt.Errorf("workload: HLS benchmark %q: %w", name, err)
		}
		out["hlsbench"] = append(out["hlsbench"],
			&ir.Program{Tasks: []*ir.Task{{Name: name, Blocks: []*ir.Block{b}}}})
	}
	for _, name := range []string{"fig1-chain", "fig3-pair", "fig4-diamond"} {
		p, err := ir.ParseString(figureTACs[name])
		if err != nil {
			return nil, fmt.Errorf("workload: figure program %q: %w", name, err)
		}
		out["figures"] = append(out["figures"], p)
	}
	return out, nil
}
