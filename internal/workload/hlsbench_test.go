package workload

import (
	"testing"

	"repro/internal/lifetime"
	"repro/internal/sched"
)

func TestHLSBenchmarksValidate(t *testing.T) {
	for name, mk := range HLSBenchmarks() {
		b, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(b.Instrs) < 20 {
			t.Errorf("%s: only %d ops, suspiciously small for an HLS benchmark", name, len(b.Instrs))
		}
	}
}

func TestEWFShape(t *testing.T) {
	b, err := EllipticWaveFilter()
	if err != nil {
		t.Fatal(err)
	}
	muls, adds := 0, 0
	for _, in := range b.Instrs {
		if in.Op.IsMultiplier() {
			muls++
		} else {
			adds++
		}
	}
	// The classic EWF: 34 operations — 26 additions, 8 multiplications.
	if muls != 8 || adds != 26 {
		t.Fatalf("ewf shape %d muls / %d adds, want 8/26", muls, adds)
	}
	s, err := sched.ASAP(b)
	if err != nil {
		t.Fatal(err)
	}
	// EWF's critical path under unit delays is the well-known 14 steps
	// (single-cycle ops).
	if s.Length < 12 || s.Length > 17 {
		t.Fatalf("ewf ASAP length %d outside the expected band", s.Length)
	}
}

func TestARFShape(t *testing.T) {
	b, err := ARFilter()
	if err != nil {
		t.Fatal(err)
	}
	muls := 0
	for _, in := range b.Instrs {
		if in.Op.IsMultiplier() {
			muls++
		}
	}
	if muls != 16 {
		t.Fatalf("arf has %d multiplications, want 16", muls)
	}
}

func TestFDCT8Shape(t *testing.T) {
	b, err := FDCT8()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outputs) != 8 {
		t.Fatalf("fdct8 outputs %d, want 8", len(b.Outputs))
	}
	muls := 0
	for _, in := range b.Instrs {
		if in.Op.IsMultiplier() {
			muls++
		}
	}
	// Loeffler's FDCT uses 11 multiplications; this reconstruction folds the
	// final sqrt(2) scaling into the coefficients, leaving 10.
	if muls != 10 {
		t.Fatalf("fdct8 has %d multiplications, want 10", muls)
	}
}

func TestHLSBenchmarksSchedulable(t *testing.T) {
	for name, mk := range HLSBenchmarks() {
		b, _ := mk()
		s, err := sched.List(b, sched.Resources{ALUs: 2, Multipliers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		set, err := lifetime.FromSchedule(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if set.MaxDensity() < 4 {
			t.Errorf("%s: density %d, too easy to stress an allocator", name, set.MaxDensity())
		}
	}
}

func TestVideoPipelineValid(t *testing.T) {
	prog, err := VideoPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Tasks) != 1 || len(prog.Tasks[0].Blocks) != 3 {
		t.Fatalf("shape: %d tasks", len(prog.Tasks))
	}
	// Handover: coldct's data inputs are rowdct's outputs.
	col := prog.Block("coldct")
	produced := map[string]bool{}
	for _, v := range prog.Block("rowdct").Outputs {
		produced[v] = true
	}
	linked := 0
	for _, v := range col.Inputs {
		if produced[v] {
			linked++
		}
	}
	if linked != 8 {
		t.Fatalf("coldct links %d rowdct outputs, want 8", linked)
	}
}
