package workload

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/sched"
)

// RSPParams sizes the synthetic radar-signal-processing kernel standing in
// for the paper's proprietary industrial example (see DESIGN.md,
// Substitutions). The kernel is one large basic block chaining a complex
// FIR (pulse compression), FFT butterflies (Doppler processing) and a
// squared-magnitude detector — the classic radar chain.
type RSPParams struct {
	// Taps is the complex FIR length.
	Taps int
	// Butterflies is the number of radix-2 butterflies in the Doppler stage.
	Butterflies int
	// ALUs and Multipliers bound the list scheduler.
	ALUs, Multipliers int
}

// DefaultRSP is tuned so the scheduled kernel has the paper's maximum
// lifetime density of 26 (105 variables over 17 control steps on a
// 3-ALU / 4-multiplier datapath).
var DefaultRSP = RSPParams{Taps: 5, Butterflies: 3, ALUs: 3, Multipliers: 4}

// Table1Registers is the register-file size used for the Table 1
// reproduction: the smallest R for which the f/4 restricted-access run is
// feasible, so register pressure is maximal across all three rows.
const Table1Registers = 13

// RSPBlock generates the radar kernel as a basic block.
func RSPBlock(p RSPParams) (*ir.Block, error) {
	if p.Taps < 2 || p.Butterflies < 1 {
		return nil, fmt.Errorf("workload: rsp needs ≥2 taps and ≥1 butterfly, got %+v", p)
	}
	b := &ir.Block{Name: "rsp"}
	add := func(op ir.OpKind, dst string, src ...string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: op, Dst: dst, Src: src})
	}
	// Inputs: complex samples and coefficients.
	for k := 0; k < p.Taps; k++ {
		b.Inputs = append(b.Inputs, fmt.Sprintf("xi%d", k), fmt.Sprintf("xq%d", k),
			fmt.Sprintf("ci%d", k), fmt.Sprintf("cq%d", k))
	}
	// Complex FIR: (xi+j·xq)·(ci+j·cq) accumulated over taps.
	// Real part: xi·ci − xq·cq; imaginary: xi·cq + xq·ci.
	for k := 0; k < p.Taps; k++ {
		add(ir.OpMul, fmt.Sprintf("prr%d", k), fmt.Sprintf("xi%d", k), fmt.Sprintf("ci%d", k))
		add(ir.OpMul, fmt.Sprintf("pqq%d", k), fmt.Sprintf("xq%d", k), fmt.Sprintf("cq%d", k))
		add(ir.OpMul, fmt.Sprintf("prq%d", k), fmt.Sprintf("xi%d", k), fmt.Sprintf("cq%d", k))
		add(ir.OpMul, fmt.Sprintf("pqr%d", k), fmt.Sprintf("xq%d", k), fmt.Sprintf("ci%d", k))
		add(ir.OpSub, fmt.Sprintf("re%d", k), fmt.Sprintf("prr%d", k), fmt.Sprintf("pqq%d", k))
		add(ir.OpAdd, fmt.Sprintf("im%d", k), fmt.Sprintf("prq%d", k), fmt.Sprintf("pqr%d", k))
	}
	// Balanced accumulation trees for real and imaginary parts.
	accTree := func(prefix, leaf string) string {
		level := 0
		cur := make([]string, p.Taps)
		for k := range cur {
			cur[k] = fmt.Sprintf("%s%d", leaf, k)
		}
		for len(cur) > 1 {
			var next []string
			for i := 0; i+1 < len(cur); i += 2 {
				dst := fmt.Sprintf("%s_%d_%d", prefix, level, i/2)
				add(ir.OpAdd, dst, cur[i], cur[i+1])
				next = append(next, dst)
			}
			if len(cur)%2 == 1 {
				next = append(next, cur[len(cur)-1])
			}
			cur = next
			level++
		}
		return cur[0]
	}
	accRe := accTree("sre", "re")
	accIm := accTree("sim", "im")

	// Doppler stage: radix-2 butterflies over pairs derived from the FIR
	// accumulators and fresh phase inputs (twiddles).
	for k := 0; k < p.Butterflies; k++ {
		wr, wi := fmt.Sprintf("wr%d", k), fmt.Sprintf("wi%d", k)
		b.Inputs = append(b.Inputs, wr, wi)
		// t = w · (accRe + j·accIm) ; butterfly outputs acc ± t.
		add(ir.OpMul, fmt.Sprintf("tr%d", k), wr, accRe)
		add(ir.OpMul, fmt.Sprintf("ti%d", k), wi, accIm)
		add(ir.OpMul, fmt.Sprintf("tm%d", k), wr, accIm)
		add(ir.OpMul, fmt.Sprintf("tn%d", k), wi, accRe)
		add(ir.OpSub, fmt.Sprintf("br%d", k), fmt.Sprintf("tr%d", k), fmt.Sprintf("ti%d", k))
		add(ir.OpAdd, fmt.Sprintf("bi%d", k), fmt.Sprintf("tm%d", k), fmt.Sprintf("tn%d", k))
		add(ir.OpAdd, fmt.Sprintf("ur%d", k), accRe, fmt.Sprintf("br%d", k))
		add(ir.OpSub, fmt.Sprintf("vr%d", k), accRe, fmt.Sprintf("br%d", k))
		add(ir.OpAdd, fmt.Sprintf("ui%d", k), accIm, fmt.Sprintf("bi%d", k))
		add(ir.OpSub, fmt.Sprintf("vi%d", k), accIm, fmt.Sprintf("bi%d", k))
	}
	// Detector: squared magnitude per butterfly output, summed.
	var mags []string
	for k := 0; k < p.Butterflies; k++ {
		add(ir.OpMul, fmt.Sprintf("m2r%d", k), fmt.Sprintf("ur%d", k), fmt.Sprintf("ur%d", k))
		add(ir.OpMul, fmt.Sprintf("m2i%d", k), fmt.Sprintf("ui%d", k), fmt.Sprintf("ui%d", k))
		add(ir.OpAdd, fmt.Sprintf("mag%d", k), fmt.Sprintf("m2r%d", k), fmt.Sprintf("m2i%d", k))
		mags = append(mags, fmt.Sprintf("mag%d", k))
		// The conjugate outputs leave the block for the next range gate.
		b.Outputs = append(b.Outputs, fmt.Sprintf("vr%d", k), fmt.Sprintf("vi%d", k))
	}
	for len(mags) > 1 {
		var next []string
		for i := 0; i+1 < len(mags); i += 2 {
			dst := fmt.Sprintf("det_%s_%s", mags[i], mags[i+1])
			add(ir.OpAdd, dst, mags[i], mags[i+1])
			next = append(next, dst)
		}
		if len(mags)%2 == 1 {
			next = append(next, mags[len(mags)-1])
		}
		mags = next
	}
	b.Outputs = append(b.Outputs, mags[0])
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// RSP generates, schedules and lifetimes the radar kernel.
func RSP(p RSPParams) (*lifetime.Set, *sched.Schedule, error) {
	b, err := RSPBlock(p)
	if err != nil {
		return nil, nil, err
	}
	s, err := sched.List(b, sched.Resources{ALUs: p.ALUs, Multipliers: p.Multipliers})
	if err != nil {
		return nil, nil, err
	}
	set, err := lifetime.FromSchedule(s)
	if err != nil {
		return nil, nil, err
	}
	return set, s, nil
}
