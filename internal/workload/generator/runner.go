package generator

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/engine"
)

// RunConfig drives one open-loop run.
type RunConfig struct {
	// Scheduler supplies the (seq, key, intended) schedule (required,
	// fresh — a partially drained scheduler skews the report).
	Scheduler *Scheduler
	// Senders is how many goroutines issue operations (required, >= 1).
	// Senders bound in-flight concurrency, not the offered rate: when all
	// senders are blocked the schedule keeps aging and the backlog's
	// lateness lands in the latency histogram, exactly as an open system's
	// users would see it.
	Senders int
	// Send issues one operation; a non-nil error counts the op failed. The
	// sample is recorded either way — failures take time too. Must be safe
	// for concurrent use.
	Send func(op Op) error
	// Cutoff, when positive, bounds how long the run may drag past the
	// schedule horizon: an op claimed more than Cutoff after the horizon is
	// counted omitted instead of sent. Omissions are never silent — they
	// are reported, and a healthy run has zero. Zero means no cutoff: every
	// scheduled op is sent no matter how late.
	Cutoff time.Duration
}

// PhaseReport summarises one phase (warmup or steady) of an open-loop run.
type PhaseReport struct {
	// Ops counts samples recorded in the phase, Errors the failed subset.
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
	// Latency is measured from each op's *intended* start — the
	// coordinated-omission-safe number a user of an open system experiences,
	// queueing-behind-a-stall included.
	Latency engine.HistogramSnapshot `json:"latency"`
	// Service is measured from the actual send instant — the closed-loop
	// style number, reported alongside so the gap between the two (the
	// coordinated-omission error) is visible in every report.
	Service engine.HistogramSnapshot `json:"service"`
}

// RunReport is the outcome of one open-loop run.
type RunReport struct {
	// Scheduled = Sent + Omitted, always.
	Scheduled int64 `json:"scheduled"`
	Sent      int64 `json:"sent"`
	Errors    int64 `json:"errors"`
	// Omitted counts scheduled ops abandoned past the cutoff. Zero on any
	// healthy run.
	Omitted int64 `json:"omitted"`
	// MaxLagNS is the worst send lateness behind the schedule — how far the
	// senders fell behind, independent of server latency.
	MaxLagNS int64 `json:"max_lag_ns"`
	// ElapsedS is the run's wall-clock length.
	ElapsedS float64 `json:"elapsed_s"`
	// OfferedRPS is the schedule's realised offered rate (scheduled ops
	// over the horizon); AchievedRPS is successful steady-state sends over
	// the steady wall time.
	OfferedRPS  float64     `json:"offered_rps"`
	AchievedRPS float64     `json:"achieved_rps"`
	Warmup      PhaseReport `json:"warmup"`
	Steady      PhaseReport `json:"steady"`
}

// phaseNames are the per-phase histogram name stems in the run's registry.
var phaseNames = [2]string{"warmup", "steady"}

// RunOpenLoop drives the schedule to completion with cfg.Senders concurrent
// senders and returns the coordinated-omission-safe report. Per-sender
// histograms are merged per phase through the serve/engine metrics registry,
// so the quantiles are exactly those of a single global histogram.
func RunOpenLoop(cfg RunConfig) (*RunReport, error) {
	if cfg.Scheduler == nil {
		return nil, errConfig("run: nil scheduler")
	}
	if cfg.Senders < 1 {
		return nil, errConfig("run: need at least one sender, got %d", cfg.Senders)
	}
	if cfg.Send == nil {
		return nil, errConfig("run: nil send function")
	}

	reg := engine.NewRegistry()
	var (
		sent, omitted, maxLag atomic.Int64
		phaseOps, phaseErrs   [2]atomic.Int64
		start                 = time.Now()
		horizon               = cfg.Scheduler.Horizon()
		abandonAfter          time.Time
		wg                    sync.WaitGroup
	)
	if cfg.Cutoff > 0 {
		abandonAfter = start.Add(horizon + cfg.Cutoff)
	}
	for i := 0; i < cfg.Senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Sender-local histograms keep the hot loop contention-free;
			// they are merged into the shared registry at sender exit.
			var lat, svc [2]engine.Histogram
			for {
				op, ok := cfg.Scheduler.Next()
				if !ok {
					break
				}
				if cfg.Cutoff > 0 && time.Now().After(abandonAfter) {
					omitted.Add(1)
					continue // keep draining so Scheduled stays exact
				}
				target := start.Add(op.Intended)
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
				sendStart := time.Now()
				if lag := sendStart.Sub(target).Nanoseconds(); lag > 0 {
					for {
						cur := maxLag.Load()
						if lag <= cur || maxLag.CompareAndSwap(cur, lag) {
							break
						}
					}
				}
				err := cfg.Send(op)
				end := time.Now()
				phase := 1
				if op.Warmup {
					phase = 0
				}
				lat[phase].Observe(end.Sub(target))
				svc[phase].Observe(end.Sub(sendStart))
				sent.Add(1)
				phaseOps[phase].Add(1)
				if err != nil {
					phaseErrs[phase].Add(1)
				}
			}
			for p, name := range phaseNames {
				reg.Histogram(name + "_latency").Merge(&lat[p])
				reg.Histogram(name + "_service").Merge(&svc[p])
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &RunReport{
		Scheduled: cfg.Scheduler.Claimed(),
		Sent:      sent.Load(),
		Errors:    phaseErrs[0].Load() + phaseErrs[1].Load(),
		Omitted:   omitted.Load(),
		MaxLagNS:  maxLag.Load(),
		ElapsedS:  elapsed.Seconds(),
	}
	rep.Warmup = PhaseReport{
		Ops:     phaseOps[0].Load(),
		Errors:  phaseErrs[0].Load(),
		Latency: reg.Histogram("warmup_latency").Snapshot(),
		Service: reg.Histogram("warmup_service").Snapshot(),
	}
	rep.Steady = PhaseReport{
		Ops:     phaseOps[1].Load(),
		Errors:  phaseErrs[1].Load(),
		Latency: reg.Histogram("steady_latency").Snapshot(),
		Service: reg.Histogram("steady_service").Snapshot(),
	}
	if horizon > 0 {
		rep.OfferedRPS = float64(rep.Scheduled) / horizon.Seconds()
	}
	warmupLen := horizon - cfg.Scheduler.cfg.Duration
	if steadyWall := elapsed - warmupLen; steadyWall > 0 {
		rep.AchievedRPS = float64(rep.Steady.Ops-rep.Steady.Errors) / steadyWall.Seconds()
	}
	return rep, nil
}
