package generator

import (
	"math"
	"time"
)

// Arrival generates interarrival gaps: the time between one operation's
// intended start and the next. Implementations are deterministic in their
// seed and allocation-free per draw; they are not safe for concurrent use
// (the Scheduler draws under its own lock).
type Arrival interface {
	// Next returns the gap before the next arrival. Always non-negative.
	Next() time.Duration
	// Rate returns the configured mean arrival rate in operations/second.
	Rate() float64
}

// Exponential draws exponentially distributed gaps, making the arrival
// process Poisson with the configured rate — the standard model for
// aggregate open-system traffic, whose bursts are exactly what a constant
// spacing hides.
type Exponential struct {
	rng  *RNG
	rate float64
	mean float64 // mean gap in nanoseconds
}

// NewExponential returns a Poisson arrival source with the given mean rate
// in operations/second. The rate must be positive, finite and at most
// MaxRate.
func NewExponential(rate float64, seed int64) (*Exponential, error) {
	if err := checkRate(rate); err != nil {
		return nil, err
	}
	return &Exponential{rng: NewRNG(seed), rate: rate, mean: 1e9 / rate}, nil
}

// Next implements Arrival.
func (e *Exponential) Next() time.Duration {
	// Inverse CDF: -ln(1-U)/λ. Log1p keeps precision for small U, and U < 1
	// keeps the draw finite.
	return durationFromNS(-math.Log1p(-e.rng.Float64()) * e.mean)
}

// Rate implements Arrival.
func (e *Exponential) Rate() float64 { return e.rate }

// Constant emits a fixed gap of 1/rate — a metronome. Useful for pinning
// deterministic schedules in tests and for isolating queueing effects from
// arrival burstiness.
type Constant struct {
	rate float64
	gap  time.Duration
}

// NewConstant returns a constant-gap arrival source with the given rate in
// operations/second, subject to the same bounds as NewExponential.
func NewConstant(rate float64) (*Constant, error) {
	if err := checkRate(rate); err != nil {
		return nil, err
	}
	return &Constant{rate: rate, gap: durationFromNS(1e9 / rate)}, nil
}

// Next implements Arrival.
func (c *Constant) Next() time.Duration { return c.gap }

// Rate implements Arrival.
func (c *Constant) Rate() float64 { return c.rate }

// durationFromNS converts a float64 nanosecond count to a Duration, clamping
// to [0, MaxInt64] — rates near the low bound would otherwise overflow the
// conversion (a Go float→int conversion out of range is not defined).
func durationFromNS(ns float64) time.Duration {
	if !(ns > 0) { // also catches NaN
		return 0
	}
	if ns >= math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ns)
}

// checkRate validates an offered rate in operations/second.
func checkRate(rate float64) error {
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 || rate > MaxRate {
		return errConfig("arrival rate %v outside (0, %g] ops/s", rate, float64(MaxRate))
	}
	return nil
}
