package generator

import (
	"math"
	"sort"
)

// KeyDist draws keys from a finite key space [0, Keys()) under a fixed
// popularity distribution. Implementations are deterministic in their seed
// and allocation-free per draw, but not safe for concurrent use — each
// sender threads its own instance, or draws happen under the scheduler's
// lock so the key stream stays deterministic.
type KeyDist interface {
	// Next draws the next key.
	Next() int
	// Prob returns the analytic probability of key k, the reference the
	// statistical goodness-of-fit tests check empirical frequencies against.
	Prob(k int) float64
	// Keys returns the key-space size.
	Keys() int
}

// Uniform draws every key with equal probability.
type Uniform struct {
	rng *RNG
	n   int
}

// NewUniform returns a uniform distribution over [0, n).
func NewUniform(n int, seed int64) (*Uniform, error) {
	if n < 1 || n > MaxKeys {
		return nil, errConfig("uniform: key space %d outside [1, %d]", n, MaxKeys)
	}
	return &Uniform{rng: NewRNG(seed), n: n}, nil
}

// Next implements KeyDist.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// Prob implements KeyDist.
func (u *Uniform) Prob(k int) float64 {
	if k < 0 || k >= u.n {
		return 0
	}
	return 1 / float64(u.n)
}

// Keys implements KeyDist.
func (u *Uniform) Keys() int { return u.n }

// Zipfian draws keys with the zipfian popularity law P(k) ∝ 1/(k+1)^theta:
// rank 0 is the hottest key and the tail decays polynomially. Sampling is
// exact inverse-CDF (binary search over the materialised CDF), not the
// YCSB rejection approximation, so empirical frequencies match Prob to
// sampling error and the chi-square test in this package has an honest null
// hypothesis. Construction is O(n); each draw is O(log n) and allocation
// free.
type Zipfian struct {
	rng   *RNG
	cdf   []float64
	theta float64
	zetan float64
}

// NewZipfian returns a zipfian distribution over [0, n) with skew parameter
// theta in [0, 1) (0 degenerates to uniform; YCSB's default is 0.99). theta
// values at or above 1 are rejected — the classic zipfian constant is
// defined for theta < 1, and heavier skew is what Hotspot is for.
func NewZipfian(n int, theta float64, seed int64) (*Zipfian, error) {
	if n < 1 || n > MaxKeys {
		return nil, errConfig("zipfian: key space %d outside [1, %d]", n, MaxKeys)
	}
	if math.IsNaN(theta) || theta < 0 || theta >= 1 {
		return nil, errConfig("zipfian: theta %v outside [0, 1)", theta)
	}
	z := &Zipfian{rng: NewRNG(seed), theta: theta, cdf: make([]float64, n)}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		z.cdf[k] = sum
	}
	z.zetan = sum
	for k := range z.cdf {
		z.cdf[k] /= sum
	}
	z.cdf[n-1] = 1 // guard against rounding leaving the last CDF entry below 1
	return z, nil
}

// Next implements KeyDist.
func (z *Zipfian) Next() int {
	return sort.SearchFloat64s(z.cdf, z.rng.Float64())
}

// Prob implements KeyDist.
func (z *Zipfian) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	return math.Pow(float64(k+1), -z.theta) / z.zetan
}

// Keys implements KeyDist.
func (z *Zipfian) Keys() int { return len(z.cdf) }

// Hotspot splits the key space into a hot set (the first hotCount keys) that
// receives a fixed fraction of the traffic and a cold remainder; draws are
// uniform within each set. It models the two-tier popularity of cached
// workloads more bluntly than zipfian and can express arbitrarily heavy skew.
type Hotspot struct {
	rng       *RNG
	n         int
	hotCount  int
	hotWeight float64
}

// NewHotspot returns a hotspot distribution over [0, n): the hottest
// ceil(hotFrac·n) keys (clamped to [1, n-1] so both sets are non-empty)
// jointly receive hotWeight of the traffic. hotFrac must lie in (0, 1) and
// hotWeight in [0, 1]; n must be at least 2 so a cold set exists.
func NewHotspot(n int, hotFrac, hotWeight float64, seed int64) (*Hotspot, error) {
	if n < 2 || n > MaxKeys {
		return nil, errConfig("hotspot: key space %d outside [2, %d]", n, MaxKeys)
	}
	if math.IsNaN(hotFrac) || hotFrac <= 0 || hotFrac >= 1 {
		return nil, errConfig("hotspot: hot fraction %v outside (0, 1)", hotFrac)
	}
	if math.IsNaN(hotWeight) || hotWeight < 0 || hotWeight > 1 {
		return nil, errConfig("hotspot: hot weight %v outside [0, 1]", hotWeight)
	}
	hotCount := int(math.Ceil(hotFrac * float64(n)))
	if hotCount < 1 {
		hotCount = 1
	}
	if hotCount > n-1 {
		hotCount = n - 1
	}
	return &Hotspot{rng: NewRNG(seed), n: n, hotCount: hotCount, hotWeight: hotWeight}, nil
}

// Next implements KeyDist.
func (h *Hotspot) Next() int {
	if h.rng.Float64() < h.hotWeight {
		return h.rng.Intn(h.hotCount)
	}
	return h.hotCount + h.rng.Intn(h.n-h.hotCount)
}

// Prob implements KeyDist.
func (h *Hotspot) Prob(k int) float64 {
	switch {
	case k < 0 || k >= h.n:
		return 0
	case k < h.hotCount:
		return h.hotWeight / float64(h.hotCount)
	default:
		return (1 - h.hotWeight) / float64(h.n-h.hotCount)
	}
}

// Keys implements KeyDist.
func (h *Hotspot) Keys() int { return h.n }

// HotKeys returns the size of the hot set, for reporting.
func (h *Hotspot) HotKeys() int { return h.hotCount }
