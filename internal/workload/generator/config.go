package generator

import (
	"strconv"
	"strings"
)

// Default distribution parameters used when a spec names a distribution but
// omits the parameter.
const (
	// DefaultTheta is the zipfian skew used by "zipfian" with no theta
	// (YCSB's default).
	DefaultTheta = 0.99
	// DefaultHotFrac is the hot-set fraction used by "hotspot" with no frac.
	DefaultHotFrac = 0.2
	// DefaultHotWeight is the hot-traffic share used by "hotspot" with no
	// weight.
	DefaultHotWeight = 0.8
)

// ParseDist builds a key distribution over [0, n) from a textual spec:
//
//	uniform
//	zipfian                  (theta = DefaultTheta)
//	zipfian:theta=0.9
//	hotspot                  (frac = DefaultHotFrac, weight = DefaultHotWeight)
//	hotspot:frac=0.1,weight=0.9
//
// Unknown names, unknown parameters, malformed numbers and out-of-range
// values are all errors; nothing panics, whatever the input.
func ParseDist(spec string, n int, seed int64) (KeyDist, error) {
	name, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	// Each arm assigns through the interface only on success: returning a
	// concrete nil pointer here would hand callers a non-nil KeyDist that
	// panics on first use.
	switch name {
	case "uniform":
		if err := rejectParams("uniform", params); err != nil {
			return nil, err
		}
		d, err := NewUniform(n, seed)
		if err != nil {
			return nil, err
		}
		return d, nil
	case "zipfian":
		theta := DefaultTheta
		if err := takeParams("zipfian", params, map[string]*float64{"theta": &theta}); err != nil {
			return nil, err
		}
		d, err := NewZipfian(n, theta, seed)
		if err != nil {
			return nil, err
		}
		return d, nil
	case "hotspot":
		frac, weight := DefaultHotFrac, DefaultHotWeight
		if err := takeParams("hotspot", params, map[string]*float64{"frac": &frac, "weight": &weight}); err != nil {
			return nil, err
		}
		d, err := NewHotspot(n, frac, weight, seed)
		if err != nil {
			return nil, err
		}
		return d, nil
	default:
		return nil, errConfig("unknown distribution %q (uniform, zipfian, hotspot)", name)
	}
}

// ParseArrival builds an interarrival source at the given rate from a
// textual spec: "exp" (Poisson arrivals) or "const" (fixed spacing).
func ParseArrival(spec string, rate float64, seed int64) (Arrival, error) {
	name, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := rejectParams(name, params); err != nil {
		return nil, err
	}
	switch name {
	case "exp", "exponential":
		a, err := NewExponential(rate, seed)
		if err != nil {
			return nil, err
		}
		return a, nil
	case "const", "constant":
		a, err := NewConstant(rate)
		if err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, errConfig("unknown arrival process %q (exp, const)", name)
	}
}

// splitSpec splits "name:k=v,k=v" into the name and its parameter map.
func splitSpec(spec string) (string, map[string]string, error) {
	spec = strings.TrimSpace(spec)
	name, rest, hasParams := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, errConfig("empty spec %q", spec)
	}
	params := map[string]string{}
	if !hasParams {
		return name, params, nil
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return "", nil, errConfig("malformed parameter %q in spec %q", part, spec)
		}
		if _, dup := params[k]; dup {
			return "", nil, errConfig("duplicate parameter %q in spec %q", k, spec)
		}
		params[k] = v
	}
	return name, params, nil
}

// takeParams parses the float parameters named in dst out of params,
// rejecting unknown names and malformed numbers.
func takeParams(name string, params map[string]string, dst map[string]*float64) error {
	for k, v := range params {
		p, ok := dst[k]
		if !ok {
			return errConfig("%s: unknown parameter %q", name, k)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return errConfig("%s: parameter %s=%q is not a number", name, k, v)
		}
		*p = f
	}
	return nil
}

// rejectParams errors when a parameterless spec carries parameters.
func rejectParams(name string, params map[string]string) error {
	if len(params) > 0 {
		return errConfig("%s takes no parameters", name)
	}
	return nil
}
