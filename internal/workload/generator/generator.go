// Package generator supplies the open-loop load-generation substrate for
// cmd/leaload: seeded, allocation-free draw-by-draw distribution generators
// over a finite key space (uniform, zipfian, hotspot — the YCSB/yabf family,
// here with exact inverse-CDF sampling so statistical tests can check the
// analytic frequencies), interarrival-time generators (exponential for
// Poisson arrivals, constant for a metronome), a sequence counter, and an
// open-loop arrival scheduler with coordinated-omission-safe latency
// accounting.
//
// The coordinated-omission point is the reason the package exists: a
// closed-loop driver that measures latency from the moment a worker sends a
// request silently drops every sample the worker *would* have sent while it
// was stuck waiting — a server stall shows up as one slow sample instead of
// thousands. The Scheduler therefore fixes every operation's intended start
// time up front from the interarrival stream, independent of how far behind
// the senders are, and RunOpenLoop measures each sample from that intended
// start. A stall then surfaces as the full backlog of late samples, which is
// what an open system's users actually experience.
//
// Every generator is deterministic in its seed: equal seeds yield
// byte-identical draw streams, distinct seeds yield distinct streams, and
// the scheduler's (sequence, key, intended-time) schedule is identical no
// matter how many senders drain it. Per-draw operation is allocation-free.
package generator

import (
	"fmt"
	"sync/atomic"
)

// Limits on generator parameters. Configurations beyond them are rejected by
// the constructors rather than silently accepted: a zipfian CDF over an
// unbounded key space would eat memory, and a rate above MaxRate asks for
// sub-10ns interarrivals no sender can honour.
const (
	// MaxKeys bounds every key-space size (the zipfian CDF is materialised).
	MaxKeys = 1 << 21
	// MaxRate bounds offered arrival rates, in operations per second.
	MaxRate = 1e8
)

// rngGamma is the splitmix64 increment (the golden-ratio constant).
const rngGamma = 0x9E3779B97F4A7C15

// RNG is a splitmix64 pseudo-random generator: tiny, allocation-free and
// deterministic in its seed, so generator streams replay byte-identically
// across runs and Go versions (unlike math/rand's unspecified algorithms).
// Not safe for concurrent use; give each consumer its own instance.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Equal seeds produce identical
// streams; distinct seeds produce distinct streams (splitmix64 is a
// bijection over the state space).
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += rngGamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// slice-index semantics; every constructor in this package validates its
// key-space size before drawing.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("generator: Intn on non-positive n") //lealint:ignore LEA0201 index-style precondition, validated by every constructor
	}
	// Rejection sampling removes the modulo bias.
	max := uint64(n)
	limit := ^uint64(0) - ^uint64(0)%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Sequence is an atomic sequence counter: Next hands out 0, 1, 2, … exactly
// once each, safe for concurrent use. It is the key distribution of choice
// when every operation must touch a fresh key.
type Sequence struct {
	n atomic.Int64
}

// NewSequence returns a counter whose first Next is start.
func NewSequence(start int64) *Sequence {
	s := &Sequence{}
	s.n.Store(start)
	return s
}

// Next returns the next sequence value.
func (s *Sequence) Next() int64 {
	return s.n.Add(1) - 1
}

// errConfig builds the uniform configuration-error form every constructor
// and parser in the package returns.
func errConfig(format string, args ...any) error {
	return fmt.Errorf("generator: %s", fmt.Sprintf(format, args...))
}
