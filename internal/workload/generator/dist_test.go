package generator

import (
	"math"
	"sort"
	"testing"
)

// chiSquare draws `draws` keys from d and returns the chi-square
// goodness-of-fit statistic against the distribution's own analytic
// frequencies (d.Prob).
func chiSquare(t *testing.T, d KeyDist, draws int) float64 {
	t.Helper()
	counts := make([]int64, d.Keys())
	for i := 0; i < draws; i++ {
		k := d.Next()
		if k < 0 || k >= d.Keys() {
			t.Fatalf("draw %d out of key space [0, %d)", k, d.Keys())
		}
		counts[k]++
	}
	stat := 0.0
	total := 0.0
	for k, obs := range counts {
		exp := d.Prob(k) * float64(draws)
		total += d.Prob(k)
		if exp < 5 {
			t.Fatalf("expected count %.2f for key %d too small for chi-square; raise draws", exp, k)
		}
		diff := float64(obs) - exp
		stat += diff * diff / exp
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("analytic probabilities sum to %v, want 1", total)
	}
	return stat
}

// Chi-square 99.9th-percentile critical values for the degrees of freedom
// the tests below use. A fixed seed makes each statistic deterministic, so a
// pass is stable; the 0.999 quantile keeps the bound statistically honest
// rather than tuned to the observed value.
var chiCrit999 = map[int]float64{
	39: 72.055,
	49: 85.351,
	63: 103.442,
}

func TestZipfianChiSquareGoodnessOfFit(t *testing.T) {
	z, err := NewZipfian(50, 0.99, 12345)
	if err != nil {
		t.Fatal(err)
	}
	stat := chiSquare(t, z, 200000)
	if crit := chiCrit999[49]; stat > crit {
		t.Errorf("zipfian chi-square %.2f above the 99.9%% critical value %.2f (df=49)", stat, crit)
	}
}

func TestZipfianThetaZeroMatchesUniform(t *testing.T) {
	z, err := NewZipfian(64, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		if math.Abs(z.Prob(k)-1.0/64) > 1e-12 {
			t.Fatalf("theta=0 Prob(%d) = %v, want uniform 1/64", k, z.Prob(k))
		}
	}
	stat := chiSquare(t, z, 200000)
	if crit := chiCrit999[63]; stat > crit {
		t.Errorf("theta=0 chi-square %.2f above the 99.9%% critical value %.2f (df=63)", stat, crit)
	}
}

func TestZipfianSkewOrdersFrequencies(t *testing.T) {
	z, err := NewZipfian(20, 0.99, 99)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 20)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= 4*counts[19] {
		t.Errorf("rank 0 drew %d vs rank 19's %d; zipfian skew missing", counts[0], counts[19])
	}
	if z.Prob(0) <= z.Prob(1) || z.Prob(1) <= z.Prob(10) {
		t.Error("analytic zipfian probabilities not decreasing in rank")
	}
}

func TestHotspotChiSquareGoodnessOfFit(t *testing.T) {
	h, err := NewHotspot(40, 0.25, 0.9, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if h.HotKeys() != 10 {
		t.Fatalf("hot set %d keys, want 10", h.HotKeys())
	}
	stat := chiSquare(t, h, 200000)
	if crit := chiCrit999[39]; stat > crit {
		t.Errorf("hotspot chi-square %.2f above the 99.9%% critical value %.2f (df=39)", stat, crit)
	}
}

func TestUniformChiSquareGoodnessOfFit(t *testing.T) {
	u, err := NewUniform(64, 31337)
	if err != nil {
		t.Fatal(err)
	}
	stat := chiSquare(t, u, 200000)
	if crit := chiCrit999[63]; stat > crit {
		t.Errorf("uniform chi-square %.2f above the 99.9%% critical value %.2f (df=63)", stat, crit)
	}
}

// TestExponentialKSBound checks the exponential interarrival stream against
// its analytic CDF with a Kolmogorov–Smirnov-style bound: the empirical CDF
// may deviate from 1-exp(-λx) by at most c/sqrt(m), c at the 1% significance
// level. The seed is fixed, so the statistic — and the pass — is
// deterministic.
func TestExponentialKSBound(t *testing.T) {
	const (
		rate  = 1000.0 // ops/s → mean gap 1ms
		draws = 20000
	)
	e, err := NewExponential(rate, 20240607)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, draws)
	mean := 0.0
	for i := range samples {
		d := e.Next()
		if d < 0 {
			t.Fatalf("negative interarrival %s", d)
		}
		samples[i] = d.Seconds()
		mean += samples[i]
	}
	mean /= draws
	if mean < 0.9/rate || mean > 1.1/rate {
		t.Errorf("mean gap %.6fs, want within 10%% of %.6fs", mean, 1/rate)
	}
	sortFloats(samples)
	sup := 0.0
	for i, x := range samples {
		f := 1 - math.Exp(-rate*x)
		lo := float64(i) / draws
		hi := float64(i+1) / draws
		if d := math.Abs(f - lo); d > sup {
			sup = d
		}
		if d := math.Abs(f - hi); d > sup {
			sup = d
		}
	}
	if bound := 1.63 / math.Sqrt(draws); sup > bound {
		t.Errorf("KS statistic %.5f above the 1%% bound %.5f", sup, bound)
	}
}

// sortFloats sorts ascending.
func sortFloats(x []float64) { sort.Float64s(x) }

// TestEqualSeedsByteIdenticalStreams pins determinism: the same seed must
// reproduce the exact draw sequence for every generator, and distinct seeds
// must diverge.
func TestEqualSeedsByteIdenticalStreams(t *testing.T) {
	mk := map[string]func(seed int64) func() int64{
		"rng": func(seed int64) func() int64 {
			r := NewRNG(seed)
			return func() int64 { return int64(r.Uint64()) }
		},
		"uniform": func(seed int64) func() int64 {
			d, err := NewUniform(1000, seed)
			if err != nil {
				t.Fatal(err)
			}
			return func() int64 { return int64(d.Next()) }
		},
		"zipfian": func(seed int64) func() int64 {
			d, err := NewZipfian(1000, 0.99, seed)
			if err != nil {
				t.Fatal(err)
			}
			return func() int64 { return int64(d.Next()) }
		},
		"hotspot": func(seed int64) func() int64 {
			d, err := NewHotspot(1000, 0.1, 0.9, seed)
			if err != nil {
				t.Fatal(err)
			}
			return func() int64 { return int64(d.Next()) }
		},
		"exp": func(seed int64) func() int64 {
			a, err := NewExponential(500, seed)
			if err != nil {
				t.Fatal(err)
			}
			return func() int64 { return int64(a.Next()) }
		},
	}
	const draws = 2000
	for name, make := range mk {
		a, b, c := make(41), make(41), make(42)
		identical, diverged := true, false
		for i := 0; i < draws; i++ {
			va, vb, vc := a(), b(), c()
			if va != vb {
				identical = false
			}
			if va != vc {
				diverged = true
			}
		}
		if !identical {
			t.Errorf("%s: equal seeds produced different streams", name)
		}
		if !diverged {
			t.Errorf("%s: distinct seeds produced identical %d-draw streams", name, draws)
		}
	}
}

func TestSequenceCountsEveryValueOnce(t *testing.T) {
	s := NewSequence(5)
	for want := int64(5); want < 105; want++ {
		if got := s.Next(); got != want {
			t.Fatalf("sequence returned %d, want %d", got, want)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"uniform n=0", errOf(NewUniform(0, 1))},
		{"uniform n too big", errOf(NewUniform(MaxKeys+1, 1))},
		{"zipfian n=0", errOf(NewZipfian(0, 0.5, 1))},
		{"zipfian theta=1", errOf(NewZipfian(10, 1, 1))},
		{"zipfian theta<0", errOf(NewZipfian(10, -0.1, 1))},
		{"zipfian theta NaN", errOf(NewZipfian(10, math.NaN(), 1))},
		{"hotspot n=1", errOf(NewHotspot(1, 0.5, 0.5, 1))},
		{"hotspot frac=0", errOf(NewHotspot(10, 0, 0.5, 1))},
		{"hotspot frac=1", errOf(NewHotspot(10, 1, 0.5, 1))},
		{"hotspot weight=-1", errOf(NewHotspot(10, 0.5, -1, 1))},
		{"hotspot weight>1", errOf(NewHotspot(10, 0.5, 1.5, 1))},
		{"exp rate=0", errOf(NewExponential(0, 1))},
		{"exp rate<0", errOf(NewExponential(-5, 1))},
		{"exp rate inf", errOf(NewExponential(math.Inf(1), 1))},
		{"exp rate above cap", errOf(NewExponential(MaxRate*2, 1))},
		{"const rate NaN", errOf(NewConstant(math.NaN()))},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted, want error", c.name)
		}
	}
}

// errOf discards the value and keeps the error, for the validation table.
func errOf[T any](_ T, err error) error { return err }

func TestParseDistSpecs(t *testing.T) {
	good := map[string]string{
		"uniform":                      "*generator.Uniform",
		"zipfian":                      "*generator.Zipfian",
		" zipfian:theta=0.5 ":          "*generator.Zipfian",
		"hotspot":                      "*generator.Hotspot",
		"hotspot:frac=0.1,weight=0.95": "*generator.Hotspot",
	}
	for spec := range good {
		d, err := ParseDist(spec, 100, 1)
		if err != nil {
			t.Errorf("spec %q rejected: %v", spec, err)
			continue
		}
		if d.Keys() != 100 {
			t.Errorf("spec %q key space %d, want 100", spec, d.Keys())
		}
	}
	bad := []string{
		"", "  ", "zipf", "zipfian:theta=", "zipfian:theta=abc", "zipfian:tehta=0.5",
		"zipfian:theta=1.0", "zipfian:theta=0.5,theta=0.6", "uniform:x=1",
		"hotspot:frac=2", "hotspot:weight=nope", "hotspot:frac", ":theta=1",
	}
	for _, spec := range bad {
		if _, err := ParseDist(spec, 100, 1); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
	if _, err := ParseDist("uniform", 0, 1); err == nil {
		t.Error("zero key space accepted")
	}
}

func TestParseArrivalSpecs(t *testing.T) {
	for _, spec := range []string{"exp", "exponential", "const", "constant"} {
		a, err := ParseArrival(spec, 100, 1)
		if err != nil {
			t.Errorf("spec %q rejected: %v", spec, err)
			continue
		}
		if a.Rate() != 100 {
			t.Errorf("spec %q rate %v, want 100", spec, a.Rate())
		}
	}
	for _, spec := range []string{"", "poisson", "exp:rate=1"} {
		if _, err := ParseArrival(spec, 100, 1); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
	if _, err := ParseArrival("exp", 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}
