package generator

import (
	"sync"
	"time"
)

// maxScheduledOps bounds one schedule's operation count: rate × horizon
// beyond this is almost certainly a mistyped flag, and refusing up front
// beats grinding through a hundred-million-op schedule.
const maxScheduledOps = 10_000_000

// Op is one scheduled operation: its claim order, the key the distribution
// assigned it, and the instant — as an offset from the run start — at which
// an ideal open-loop client would have sent it. The runner measures latency
// from Intended, never from the actual send, which is what makes the
// accounting coordinated-omission safe.
type Op struct {
	// Seq numbers the operation within the schedule, from 0.
	Seq int64
	// Key is the key-distribution draw for this operation.
	Key int
	// Intended is the operation's target start offset from the run start.
	Intended time.Duration
	// Warmup marks operations in the warmup phase, excluded from
	// steady-state statistics.
	Warmup bool
}

// ScheduleConfig describes one open-loop schedule.
type ScheduleConfig struct {
	// Arrival supplies the interarrival gaps (required).
	Arrival Arrival
	// Keys supplies each operation's key (required).
	Keys KeyDist
	// Warmup is the initial phase excluded from steady-state statistics
	// (may be zero).
	Warmup time.Duration
	// Duration is the steady-state phase length (required, positive).
	Duration time.Duration
}

// Scheduler lazily materialises the arrival schedule and hands ops to any
// number of concurrent senders. The (Seq, Key, Intended) stream is a pure
// function of the generators' seeds: both draws happen under the scheduler's
// lock in claim order, so the schedule is identical no matter how many
// senders drain it or how their claims interleave — the property the
// multi-sender race test pins.
type Scheduler struct {
	mu      sync.Mutex
	cfg     ScheduleConfig
	horizon time.Duration
	next    time.Duration
	seq     int64
	done    bool
}

// NewScheduler validates cfg and returns a scheduler whose first op lands
// one interarrival gap after the run start and whose last lands strictly
// before Warmup+Duration.
func NewScheduler(cfg ScheduleConfig) (*Scheduler, error) {
	if cfg.Arrival == nil {
		return nil, errConfig("scheduler: nil arrival source")
	}
	if cfg.Keys == nil {
		return nil, errConfig("scheduler: nil key distribution")
	}
	if cfg.Duration <= 0 {
		return nil, errConfig("scheduler: non-positive duration %s", cfg.Duration)
	}
	if cfg.Warmup < 0 {
		return nil, errConfig("scheduler: negative warmup %s", cfg.Warmup)
	}
	horizon := cfg.Warmup + cfg.Duration
	if expect := cfg.Arrival.Rate() * horizon.Seconds(); expect > maxScheduledOps {
		return nil, errConfig("scheduler: %s at %.0f ops/s schedules ~%.0f ops, above the %d cap",
			horizon, cfg.Arrival.Rate(), expect, maxScheduledOps)
	}
	s := &Scheduler{cfg: cfg, horizon: horizon}
	s.next = cfg.Arrival.Next()
	return s, nil
}

// Next claims the next scheduled op; ok is false once the schedule is
// exhausted. Safe for concurrent use; each op is handed out exactly once.
func (s *Scheduler) Next() (op Op, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done || s.next >= s.horizon {
		s.done = true
		return Op{}, false
	}
	op = Op{
		Seq:      s.seq,
		Key:      s.cfg.Keys.Next(),
		Intended: s.next,
		Warmup:   s.next < s.cfg.Warmup,
	}
	s.seq++
	gap := s.cfg.Arrival.Next()
	if next := s.next + gap; next >= s.next {
		s.next = next
	} else {
		s.done = true // cumulative offset would overflow; schedule is over anyway
	}
	return op, true
}

// Horizon returns the schedule's total span (warmup + steady).
func (s *Scheduler) Horizon() time.Duration { return s.horizon }

// Claimed returns how many ops have been handed out so far; once Next has
// returned ok=false it is the schedule's total op count.
func (s *Scheduler) Claimed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
