package generator

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/serve/engine"
	"repro/internal/serve/transport"
	"repro/internal/workload"
)

// testScheduler builds a fresh scheduler from one seed pair so tests can
// replay the identical schedule.
func testScheduler(t *testing.T, rate float64, warmup, duration time.Duration, seed int64) *Scheduler {
	t.Helper()
	arr, err := NewExponential(rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := NewZipfian(16, 0.99, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(ScheduleConfig{Arrival: arr, Keys: keys, Warmup: warmup, Duration: duration})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchedulerValidation(t *testing.T) {
	arr, _ := NewConstant(100)
	keys, _ := NewUniform(4, 1)
	for name, cfg := range map[string]ScheduleConfig{
		"nil arrival":  {Keys: keys, Duration: time.Second},
		"nil keys":     {Arrival: arr, Duration: time.Second},
		"zero dur":     {Arrival: arr, Keys: keys},
		"neg warmup":   {Arrival: arr, Keys: keys, Duration: time.Second, Warmup: -time.Second},
		"too many ops": {Arrival: mustArr(t, MaxRate), Keys: keys, Duration: time.Hour},
	} {
		if _, err := NewScheduler(cfg); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

func mustArr(t *testing.T, rate float64) Arrival {
	t.Helper()
	a, err := NewConstant(rate)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestScheduleDeterministicAcrossSenders pins the core scheduler property:
// the (seq, key, intended, warmup) schedule drained by 8 racing goroutines
// is exactly the schedule drained single-threaded — claims interleave, the
// schedule does not. Run under -race in CI.
func TestScheduleDeterministicAcrossSenders(t *testing.T) {
	const seed = 777
	ref := testScheduler(t, 5000, 100*time.Millisecond, 400*time.Millisecond, seed)
	var want []Op
	for {
		op, ok := ref.Next()
		if !ok {
			break
		}
		want = append(want, op)
	}
	if len(want) < 1000 {
		t.Fatalf("reference schedule only %d ops; raise the rate", len(want))
	}
	if int64(len(want)) != ref.Claimed() {
		t.Fatalf("Claimed %d != drained %d", ref.Claimed(), len(want))
	}

	concurrent := testScheduler(t, 5000, 100*time.Millisecond, 400*time.Millisecond, seed)
	var (
		mu   sync.Mutex
		got  = map[int64]Op{}
		wg   sync.WaitGroup
		dups int
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				op, ok := concurrent.Next()
				if !ok {
					return
				}
				mu.Lock()
				if _, seen := got[op.Seq]; seen {
					dups++
				}
				got[op.Seq] = op
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if dups != 0 {
		t.Fatalf("%d duplicate sequence numbers handed out", dups)
	}
	if len(got) != len(want) {
		t.Fatalf("concurrent drain yielded %d ops, single-threaded %d", len(got), len(want))
	}
	for _, w := range want {
		g, ok := got[w.Seq]
		if !ok {
			t.Fatalf("seq %d never claimed concurrently", w.Seq)
		}
		if g != w {
			t.Fatalf("seq %d: concurrent %+v != reference %+v", w.Seq, g, w)
		}
	}
	// Warmup flags must partition exactly at the warmup boundary.
	for _, w := range want {
		if w.Warmup != (w.Intended < 100*time.Millisecond) {
			t.Fatalf("seq %d: warmup flag %v at offset %s", w.Seq, w.Warmup, w.Intended)
		}
	}
}

func TestSchedulerIntendedTimesMonotone(t *testing.T) {
	s := testScheduler(t, 2000, 0, 200*time.Millisecond, 3)
	last := time.Duration(-1)
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		if op.Intended < last {
			t.Fatalf("intended time went backwards: %s after %s", op.Intended, last)
		}
		if op.Intended >= s.Horizon() {
			t.Fatalf("op scheduled at %s beyond horizon %s", op.Intended, s.Horizon())
		}
		last = op.Intended
	}
}

// TestRunOpenLoopCoordinatedOmission is the coordinated-omission regression:
// the transport stalls completely for a fixed window, and the open-loop
// latency (measured from each op's intended start) must surface the stall at
// p99, while the service-time measurement — what a closed-loop driver would
// report — under-reports it by an order of magnitude. If someone "fixes" the
// runner to measure from the actual send, this test fails.
func TestRunOpenLoopCoordinatedOmission(t *testing.T) {
	const (
		stallStart = 100 * time.Millisecond
		stallEnd   = 300 * time.Millisecond // 200ms total stall
	)
	s := testScheduler(t, 2000, 0, 400*time.Millisecond, 11)
	t0 := time.Now()
	send := func(Op) error {
		if el := time.Since(t0); el >= stallStart && el < stallEnd {
			time.Sleep(stallEnd - el) // the whole service is frozen
		}
		return nil
	}
	rep, err := RunOpenLoop(RunConfig{Scheduler: s, Senders: 4, Send: send})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Omitted != 0 || rep.Sent != rep.Scheduled {
		t.Fatalf("sent %d omitted %d of %d scheduled, want all sent", rep.Sent, rep.Omitted, rep.Scheduled)
	}
	stall := (stallEnd - stallStart).Nanoseconds()
	if got := rep.Steady.Latency.P99NS; got < stall/2 {
		t.Errorf("open-loop p99 %s under-reports the %s stall (want >= half)",
			time.Duration(got), time.Duration(stall))
	}
	if got := rep.Steady.Service.P99NS; got > stall/4 {
		t.Errorf("service-time p99 %s unexpectedly high; the closed-loop view should hide the stall (< %s)",
			time.Duration(got), time.Duration(stall/4))
	}
	if rep.MaxLagNS < stall/2 {
		t.Errorf("max send lag %s, want >= %s: the backlog must show up as lag",
			time.Duration(rep.MaxLagNS), time.Duration(stall/2))
	}
}

// TestRunOpenLoopAgainstService drives the open-loop runner with several
// senders against a real in-process transport.Service (an engine.Engine) and
// checks the deterministic schedule is fully accounted for: sent count,
// per-phase histogram totals, zero omitted samples, zero errors. Run under
// -race in CI.
func TestRunOpenLoopAgainstService(t *testing.T) {
	var svc transport.Service = engine.New(engine.Config{Workers: 4, QueueDepth: 256})

	// Three fixed figure-class programs keyed by the zipfian draw.
	classes, err := workload.Programs(rand.New(rand.NewSource(1)), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	var programs []string
	for _, p := range classes["figures"] {
		var buf bytes.Buffer
		if err := ir.Format(&buf, p); err != nil {
			t.Fatal(err)
		}
		programs = append(programs, buf.String())
	}
	if len(programs) == 0 {
		t.Fatal("no figure programs")
	}

	const seed = 4242
	// Replay the schedule single-threaded to learn the expected totals.
	ref := testScheduler(t, 1500, 50*time.Millisecond, 250*time.Millisecond, seed)
	var wantTotal, wantWarm int64
	for {
		op, ok := ref.Next()
		if !ok {
			break
		}
		wantTotal++
		if op.Warmup {
			wantWarm++
		}
	}

	s := testScheduler(t, 1500, 50*time.Millisecond, 250*time.Millisecond, seed)
	rep, err := RunOpenLoop(RunConfig{
		Scheduler: s,
		Senders:   6,
		Send: func(op Op) error {
			req := &engine.Request{
				Program: programs[op.Key%len(programs)],
				Options: engine.RequestOptions{Registers: 4},
			}
			_, err := svc.Allocate(context.Background(), req)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduled != wantTotal || rep.Sent != wantTotal {
		t.Errorf("scheduled %d sent %d, want the deterministic %d", rep.Scheduled, rep.Sent, wantTotal)
	}
	if rep.Omitted != 0 {
		t.Errorf("%d omitted samples, want 0", rep.Omitted)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors, want 0", rep.Errors)
	}
	if rep.Warmup.Ops != wantWarm || rep.Steady.Ops != wantTotal-wantWarm {
		t.Errorf("phase split %d/%d, want %d/%d", rep.Warmup.Ops, rep.Steady.Ops, wantWarm, wantTotal-wantWarm)
	}
	if rep.Warmup.Latency.Count != rep.Warmup.Ops || rep.Steady.Latency.Count != rep.Steady.Ops {
		t.Errorf("histogram totals %d/%d disagree with op counts %d/%d",
			rep.Warmup.Latency.Count, rep.Steady.Latency.Count, rep.Warmup.Ops, rep.Steady.Ops)
	}
	if rep.Warmup.Service.Count != rep.Warmup.Ops || rep.Steady.Service.Count != rep.Steady.Ops {
		t.Errorf("service histogram totals %d/%d disagree with op counts %d/%d",
			rep.Warmup.Service.Count, rep.Steady.Service.Count, rep.Warmup.Ops, rep.Steady.Ops)
	}
	if err := engineClose(svc); err != nil {
		t.Errorf("engine close: %v", err)
	}
}

// engineClose drains the engine behind the Service view.
func engineClose(svc transport.Service) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return svc.(*engine.Engine).Close(ctx)
}

// TestRunOpenLoopCutoffCountsOmissions checks the late-cutoff path: a send
// far slower than the schedule with a tiny cutoff must abandon the tail of
// the schedule as omitted — and account every scheduled op as either sent or
// omitted, never silently dropped.
func TestRunOpenLoopCutoffCountsOmissions(t *testing.T) {
	arr, err := NewConstant(1000)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := NewUniform(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(ScheduleConfig{Arrival: arr, Keys: keys, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOpenLoop(RunConfig{
		Scheduler: s,
		Senders:   1,
		Cutoff:    20 * time.Millisecond,
		Send:      func(Op) error { time.Sleep(5 * time.Millisecond); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Omitted == 0 {
		t.Error("overloaded run reported zero omitted samples")
	}
	if rep.Sent+rep.Omitted != rep.Scheduled {
		t.Errorf("sent %d + omitted %d != scheduled %d", rep.Sent, rep.Omitted, rep.Scheduled)
	}
}

func TestRunOpenLoopValidation(t *testing.T) {
	s := testScheduler(t, 100, 0, 50*time.Millisecond, 1)
	send := func(Op) error { return nil }
	if _, err := RunOpenLoop(RunConfig{Senders: 1, Send: send}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := RunOpenLoop(RunConfig{Scheduler: s, Senders: 0, Send: send}); err == nil {
		t.Error("zero senders accepted")
	}
	if _, err := RunOpenLoop(RunConfig{Scheduler: s, Senders: 1}); err == nil {
		t.Error("nil send accepted")
	}
}
