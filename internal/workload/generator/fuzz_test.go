package generator

import (
	"testing"
	"time"
)

// FuzzGeneratorConfig throws arbitrary distribution/arrival specs and
// numeric parameters at the parsing, validation and scheduling layers. The
// invariant is simple: bad configurations error cleanly, good ones produce
// well-formed draws — nothing panics, loops forever or hands out malformed
// schedules, whatever the input.
func FuzzGeneratorConfig(f *testing.F) {
	f.Add("uniform", "exp", 10, 100.0, int64(1), int64(50), int64(50))
	f.Add("zipfian:theta=0.99", "const", 100, 1000.0, int64(2), int64(0), int64(100))
	f.Add("zipfian:theta=1.5", "exp", 100, 1000.0, int64(3), int64(10), int64(10))
	f.Add("hotspot:frac=0.1,weight=0.9", "exponential", 1000, 0.0, int64(4), int64(-5), int64(20))
	f.Add("hotspot:frac=1,weight=2", "constant", 2, 1e12, int64(5), int64(1), int64(-1))
	f.Add("zipfian:theta=NaN", "poisson", MaxKeys+1, -3.0, int64(6), int64(0), int64(0))
	f.Add("", ":", 0, 1e-300, int64(7), int64(1<<40), int64(1<<40))
	f.Add("uniform:frac=0.5", "exp:burst=2", -5, 42.0, int64(8), int64(3), int64(3))

	f.Fuzz(func(t *testing.T, distSpec, arrSpec string, n int, rate float64, seed, warmupMs, durationMs int64) {
		keys, err := ParseDist(distSpec, n, seed)
		if err == nil {
			if keys.Keys() != n {
				t.Fatalf("accepted key space %d but Keys() = %d", n, keys.Keys())
			}
			for i := 0; i < 16; i++ {
				if k := keys.Next(); k < 0 || k >= n {
					t.Fatalf("draw %d outside [0, %d)", k, n)
				}
			}
			if p := keys.Prob(-1); p != 0 {
				t.Fatalf("Prob(-1) = %v, want 0", p)
			}
			if p := keys.Prob(n); p != 0 {
				t.Fatalf("Prob(n) = %v, want 0", p)
			}
		}
		arr, err := ParseArrival(arrSpec, rate, seed)
		if err == nil {
			for i := 0; i < 16; i++ {
				if d := arr.Next(); d < 0 {
					t.Fatalf("negative interarrival %s", d)
				}
			}
		}
		if keys == nil || arr == nil {
			return
		}
		// Clamp the fuzzed phase lengths into ±1h so the scheduler's own
		// validation is what decides, not Duration overflow in the test.
		clamp := func(ms int64) time.Duration {
			if ms > 3_600_000 {
				ms = 3_600_000
			}
			if ms < -3_600_000 {
				ms = -3_600_000
			}
			return time.Duration(ms) * time.Millisecond
		}
		s, err := NewScheduler(ScheduleConfig{
			Arrival:  arr,
			Keys:     keys,
			Warmup:   clamp(warmupMs),
			Duration: clamp(durationMs),
		})
		if err != nil {
			return
		}
		last := time.Duration(-1)
		for i := 0; i < 1000; i++ {
			op, ok := s.Next()
			if !ok {
				break
			}
			if op.Seq != int64(i) {
				t.Fatalf("op %d carries seq %d", i, op.Seq)
			}
			if op.Intended < last || op.Intended >= s.Horizon() {
				t.Fatalf("op %d intended %s (last %s, horizon %s)", i, op.Intended, last, s.Horizon())
			}
			if op.Key < 0 || op.Key >= keys.Keys() {
				t.Fatalf("op %d key %d outside [0, %d)", i, op.Key, keys.Keys())
			}
			last = op.Intended
		}
	})
}
