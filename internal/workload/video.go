package workload

import (
	"fmt"

	"repro/internal/ir"
)

// VideoPipeline builds the multi-block program the paper's introduction
// motivates ("multimedia applications ... audio and video algorithms which
// process large amounts of data"): a 2-D DCT slice — a row DCT over eight
// samples, a column DCT over the row coefficients, and a quantisation
// stage — as one task of three chained basic blocks whose values hand over
// through memory, ready for the task-level pipeline driver.
func VideoPipeline() (*ir.Program, error) {
	row, err := fdctStage("rowdct", "s", "y")
	if err != nil {
		return nil, err
	}
	col, err := fdctStage("coldct", "y", "z")
	if err != nil {
		return nil, err
	}
	quant := &ir.Block{Name: "quant"}
	for i := 0; i < 8; i++ {
		quant.Inputs = append(quant.Inputs, fmt.Sprintf("z%d", i))
	}
	quant.Inputs = append(quant.Inputs, "qstep")
	for i := 0; i < 8; i++ {
		quant.Instrs = append(quant.Instrs,
			ir.Instr{Op: ir.OpMul, Dst: fmt.Sprintf("qs%d", i), Src: []string{fmt.Sprintf("z%d", i), "qstep"}},
			ir.Instr{Op: ir.OpShr, Dst: fmt.Sprintf("q%d", i), Src: []string{fmt.Sprintf("qs%d", i), "qstep"}},
		)
		quant.Outputs = append(quant.Outputs, fmt.Sprintf("q%d", i))
	}
	if err := quant.Validate(); err != nil {
		return nil, fmt.Errorf("workload: quant: %w", err)
	}
	prog := &ir.Program{Tasks: []*ir.Task{{
		Name:   "video2d",
		Blocks: []*ir.Block{row, col, quant},
	}}}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// fdctStage builds an 8-point DCT butterfly block reading inPrefix0..7 and
// writing outPrefix0..7, with stage-local intermediate names.
func fdctStage(name, inPrefix, outPrefix string) (*ir.Block, error) {
	b := &ir.Block{Name: name}
	in := func(i int) string { return fmt.Sprintf("%s%d", inPrefix, i) }
	out := func(i int) string { return fmt.Sprintf("%s%d", outPrefix, i) }
	loc := func(base string, i int) string { return fmt.Sprintf("%s_%s%d", name, base, i) }
	for i := 0; i < 8; i++ {
		b.Inputs = append(b.Inputs, in(i))
	}
	coeffs := []string{name + "_ca", name + "_cb", name + "_cc", name + "_cd", name + "_ce"}
	b.Inputs = append(b.Inputs, coeffs...)
	add := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpAdd, Dst: dst, Src: []string{a, bb}})
	}
	sub := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpSub, Dst: dst, Src: []string{a, bb}})
	}
	mul := func(dst, a, bb string) {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMul, Dst: dst, Src: []string{a, bb}})
	}
	for i := 0; i < 4; i++ {
		add(loc("a", i), in(i), in(7-i))
		sub(loc("b", i), in(i), in(7-i))
	}
	add(loc("e", 0), loc("a", 0), loc("a", 3))
	add(loc("e", 1), loc("a", 1), loc("a", 2))
	sub(loc("e", 2), loc("a", 0), loc("a", 3))
	sub(loc("e", 3), loc("a", 1), loc("a", 2))
	add(out(0), loc("e", 0), loc("e", 1))
	sub(out(4), loc("e", 0), loc("e", 1))
	mul(loc("p", 0), loc("e", 2), coeffs[0])
	mul(loc("p", 1), loc("e", 3), coeffs[1])
	add(out(2), loc("p", 0), loc("p", 1))
	mul(loc("p", 2), loc("e", 2), coeffs[1])
	mul(loc("p", 3), loc("e", 3), coeffs[0])
	sub(out(6), loc("p", 2), loc("p", 3))
	mul(loc("q", 0), loc("b", 0), coeffs[2])
	mul(loc("q", 1), loc("b", 3), coeffs[3])
	add(loc("r", 0), loc("q", 0), loc("q", 1))
	mul(loc("q", 2), loc("b", 1), coeffs[4])
	mul(loc("q", 3), loc("b", 2), coeffs[4])
	add(loc("r", 1), loc("q", 2), loc("q", 3))
	sub(loc("r", 2), loc("q", 2), loc("q", 3))
	mul(loc("q", 4), loc("b", 0), coeffs[3])
	mul(loc("q", 5), loc("b", 3), coeffs[2])
	sub(loc("r", 3), loc("q", 4), loc("q", 5))
	add(out(1), loc("r", 0), loc("r", 1))
	sub(out(7), loc("r", 3), loc("r", 2))
	add(out(5), loc("r", 3), loc("r", 2))
	sub(out(3), loc("r", 0), loc("r", 1))
	for i := 0; i < 8; i++ {
		b.Outputs = append(b.Outputs, out(i))
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	return b, nil
}
