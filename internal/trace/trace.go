// Package trace synthesises data-value traces for switching-activity
// estimation. The paper's activity model needs the Hamming distance between
// the values of variables that successively share a register; lacking the
// industrial example's data, we derive deterministic pseudo-random W-bit
// values per variable (seeded by name) and average the bit differences over
// a short sample stream. This preserves the behaviour the model consumes: a
// stable, data-dependent switching fraction per ordered variable pair.
package trace

import (
	"hash/fnv"
	"math/bits"

	"repro/internal/energy"
)

// Width is the datapath word width (the paper's examples are 16-bit).
const Width = 16

// Samples is the stream length used to average switching activity.
const Samples = 8

// Values returns the deterministic sample stream of a variable.
func Values(name string) [Samples]uint16 {
	var vals [Samples]uint16
	h := fnv.New64a()
	h.Write([]byte(name))
	state := h.Sum64() | 1
	for i := range vals {
		// xorshift64 keeps the stream deterministic and well mixed.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		vals[i] = uint16(state)
	}
	return vals
}

// Activity returns the average fraction of bits switching when v2's values
// overwrite v1's in a register.
func Activity(v1, v2 string) float64 {
	a, b := Values(v1), Values(v2)
	total := 0
	for i := 0; i < Samples; i++ {
		total += bits.OnesCount16(a[i] ^ b[i])
	}
	return float64(total) / float64(Samples*Width)
}

// Hamming returns an energy.Hamming oracle over synthetic traces, using the
// standard half-switch assumption for the register's initial state.
func Hamming() energy.Hamming {
	return func(v1, v2 string) float64 {
		if v1 == "" {
			return energy.DefaultInitialActivity
		}
		return Activity(v1, v2)
	}
}
