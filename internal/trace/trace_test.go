package trace

import (
	"testing"
	"testing/quick"
)

func TestValuesDeterministic(t *testing.T) {
	a := Values("x0")
	b := Values("x0")
	if a != b {
		t.Fatal("value stream not deterministic")
	}
	if Values("x0") == Values("x1") {
		t.Fatal("distinct variables got identical streams")
	}
}

func TestActivityRange(t *testing.T) {
	f := func(a, b string) bool {
		h := Activity(a, b)
		return h >= 0 && h <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestActivitySelfZero(t *testing.T) {
	if got := Activity("v", "v"); got != 0 {
		t.Fatalf("self activity %g, want 0 (same values)", got)
	}
}

func TestActivitySymmetricInXor(t *testing.T) {
	// Hamming distance is symmetric.
	if Activity("a", "b") != Activity("b", "a") {
		t.Fatal("activity not symmetric")
	}
}

func TestActivityNontrivial(t *testing.T) {
	// Random 16-bit values differ in roughly half their bits; allow a wide
	// band but reject degenerate oracles.
	h := Activity("alpha", "beta")
	if h < 0.1 || h > 0.9 {
		t.Fatalf("activity %g looks degenerate", h)
	}
}

func TestHammingOracle(t *testing.T) {
	h := Hamming()
	if h("", "v") != 0.5 {
		t.Fatalf("initial state %g, want 0.5", h("", "v"))
	}
	if h("a", "b") != Activity("a", "b") {
		t.Fatal("oracle disagrees with Activity")
	}
}
