package actmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/lifetime"
	"repro/internal/memmap"
	"repro/internal/netbuild"
	"repro/internal/workload"
)

func baseOptions(regs int) core.Options {
	return core.Options{
		Registers: regs,
		Memory:    lifetime.FullSpeed,
		Style:     netbuild.DensityRegions,
		Cost:      netbuild.CostOptions{Style: energy.Static, Model: energy.OnChip256x16()},
	}
}

func TestOptimizeSequentialWhenUncoupled(t *testing.T) {
	set := workload.Figure3()
	res, err := Optimize(set, Options{
		Core:   baseOptions(1),
		H:      workload.Figure3Hamming(),
		CmemV2: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("uncoupled run iterated %d times", res.Iterations)
	}
	// Matches the plain sequential pipeline.
	alloc, err := core.Allocate(set, baseOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.TotalEnergy != alloc.TotalEnergy {
		t.Fatalf("uncoupled energy %g != plain %g", res.Alloc.TotalEnergy, alloc.TotalEnergy)
	}
}

func TestOptimizeNeverWorseThanSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := workload.MustRandom(rng, workload.RandomParams{
			Vars: 4 + rng.Intn(8), Steps: 6 + rng.Intn(6), MaxReads: 2, ExternalFrac: 0.2, InputFrac: 0.2,
		})
		regs := rng.Intn(set.MaxDensity() + 1)
		h := energy.ConstHamming(0.5)
		cmem := 1.0 + 2*rng.Float64()
		opts := Options{Core: baseOptions(regs), H: h, CmemV2: cmem, MaxIters: 5}

		res, err := Optimize(set, opts)
		if err != nil {
			return false
		}
		// Sequential reference: one allocation + one binding.
		alloc, err := core.Allocate(set, baseOptions(regs))
		if err != nil {
			return false
		}
		bind, err := memmap.Allocate(set, memoryVariables(alloc), h)
		if err != nil {
			return false
		}
		seq := alloc.TotalEnergy + cmem*bind.Switching
		return res.CombinedEnergy <= seq+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeHistoryMonotoneBest(t *testing.T) {
	set := workload.Figure3()
	res, err := Optimize(set, Options{
		Core:     baseOptions(1),
		H:        workload.Figure3Hamming(),
		CmemV2:   2.0,
		MaxIters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	// The reported energy is the best over the history.
	for _, e := range res.History {
		if res.CombinedEnergy > e+1e-9 {
			t.Fatalf("best %g worse than history entry %g", res.CombinedEnergy, e)
		}
	}
}

func TestOptimizeRequiresOracle(t *testing.T) {
	if _, err := Optimize(workload.Figure3(), Options{Core: baseOptions(1)}); err == nil {
		t.Fatal("missing oracle accepted")
	}
}

func TestOptimizePropagatesErrors(t *testing.T) {
	opts := baseOptions(0)
	opts.Memory = lifetime.MemoryAccess{Period: 40, Offset: 1}
	opts.Split = lifetime.SplitMinimal
	if _, err := Optimize(workload.Figure1(), Options{Core: opts, H: energy.ConstHamming(0.5)}); err == nil {
		t.Fatal("infeasible core allocation not propagated")
	}
}
