// Package actmem approximates the two-commodity problem §7 declares
// NP-complete: choosing the register/memory partition *and* the
// activity-minimal memory binding simultaneously. The paper solves the two
// stages in sequence (partition by min-cost flow, then rebind memory); this
// package closes the loop with an alternating heuristic:
//
//  1. allocate registers/memory with the current per-variable memory-energy
//     estimates;
//  2. bind the memory-resident variables to locations (min-activity flow);
//  3. re-estimate each variable's memory read/write energy from the data
//     switching its binding actually causes;
//  4. repeat until the assignment stops changing (or maxIters).
//
// The result is never worse than the one-shot sequential flow under the
// combined objective, because iteration stops as soon as it fails to
// improve.
package actmem

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/lifetime"
	"repro/internal/memmap"
)

// Result is the converged co-optimisation outcome.
type Result struct {
	// Alloc is the final register/memory partition.
	Alloc *core.Result
	// Binding is the final memory-location binding.
	Binding *memmap.Binding
	// CombinedEnergy is storage energy plus the memory data-switching term
	// (the two commodities).
	CombinedEnergy float64
	// Iterations actually run.
	Iterations int
	// History records the combined energy after each iteration.
	History []float64
}

// Options configures the heuristic.
type Options struct {
	// Core configures the inner allocation (register count, graph style...).
	// Its Cost.Model is used as the base energy model.
	Core core.Options
	// H scores data switching between variables sharing a memory word;
	// required.
	H energy.Hamming
	// CmemV2 converts memory data-switching fractions to energy (the
	// memory-bus analogue of Crw·V² in eq. 2). Zero disables the coupling,
	// reducing the heuristic to the paper's sequential two-stage flow.
	CmemV2 float64
	// MaxIters bounds the alternation (default 6).
	MaxIters int
}

// Optimize runs the alternating heuristic.
func Optimize(set *lifetime.Set, opt Options) (*Result, error) {
	if opt.H == nil {
		return nil, fmt.Errorf("actmem: switching oracle required")
	}
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 6
	}
	coreOpts := opt.Core
	baseModel := coreOpts.Cost.Model

	// Per-variable memory energy adjustment, updated each round.
	adjust := make(map[string]float64)
	var (
		best     *Result
		prevComb = 0.0
	)
	for iter := 1; iter <= maxIters; iter++ {
		// The flow solver takes one model for all variables; fold the mean
		// adjustment in (per-variable adjustment would need per-arc models,
		// which the alternation approximates via the oracle below).
		model := baseModel
		if len(adjust) > 0 {
			var mean float64
			for _, a := range adjust {
				mean += a
			}
			mean /= float64(len(adjust))
			model.MemRead += mean / 2
			model.MemWrite += mean / 2
		}
		coreOpts.Cost.Model = model
		alloc, err := core.Allocate(set, coreOpts)
		if err != nil {
			return nil, err
		}
		memVars := memoryVariables(alloc)
		bind, err := memmap.Allocate(set, memVars, opt.H)
		if err != nil {
			return nil, err
		}
		// Combined objective: storage energy under the BASE model plus the
		// binding's data-switching energy.
		combined := realloc(alloc, baseModel, coreOpts) + opt.CmemV2*bind.Switching
		r := &Result{Alloc: alloc, Binding: bind, CombinedEnergy: combined, Iterations: iter}
		if best == nil || combined < best.CombinedEnergy-1e-9 {
			rCopy := *r
			best = &rCopy
		}
		if best != nil {
			best.Iterations = iter
			best.History = append(best.History, combined)
		}
		if iter > 1 && combined >= prevComb-1e-9 {
			break // converged (or oscillating): keep the best seen
		}
		prevComb = combined
		// Re-estimate per-variable memory energy from the binding's chains:
		// a variable whose neighbours switch many bits makes its memory
		// accesses more expensive.
		adjust = make(map[string]float64)
		for _, chain := range bind.Chains {
			prev := ""
			for _, v := range chain {
				adjust[v] += opt.CmemV2 * opt.H(prev, v)
				prev = v
			}
		}
		if opt.CmemV2 == 0 {
			break // no coupling: sequential behaviour, single round
		}
	}
	return best, nil
}

// realloc evaluates the allocation's storage energy under the base model
// (undoing any adjusted model used during the solve).
func realloc(alloc *core.Result, base energy.Model, opts core.Options) float64 {
	co := opts.Cost
	co.Model = base
	return alloc.EnergyUnder(co)
}

func memoryVariables(r *core.Result) []string {
	seen := make(map[string]bool)
	var vars []string
	for i := range r.Build.Segments {
		v := r.Build.Segments[i].Var
		if !r.InRegister[i] && !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	return vars
}
