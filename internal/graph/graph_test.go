package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	order, err := g.TopoSort()
	if err != nil || len(order) != 0 {
		t.Fatalf("empty topo: %v %v", order, err)
	}
}

func TestAddNodeGrows(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddNode returned %d, N=%d", id, g.N())
	}
	g.AddArc(2, 0)
	if !g.HasArc(2, 0) {
		t.Fatal("arc from fresh node missing")
	}
}

func TestDegreesAndHasArc(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0)=%d, want 2", got)
	}
	if got := g.InDegree(2); got != 2 {
		t.Errorf("InDegree(2)=%d, want 2", got)
	}
	if g.HasArc(1, 0) {
		t.Error("HasArc(1,0) true, arc is directed")
	}
	if !g.HasArc(0, 2) {
		t.Error("HasArc(0,2) false")
	}
	if g.M() != 4 {
		t.Errorf("M=%d, want 4", g.M())
	}
}

func TestParallelArcsCounted(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	if g.M() != 2 {
		t.Fatalf("parallel arcs: M=%d, want 2", g.M())
	}
	if len(g.Out(0)) != 2 {
		t.Fatalf("Out(0) has %d arcs, want 2", len(g.Out(0)))
	}
}

func TestTopoSortChain(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddArc(i, i+1)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain topo order %v", order)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := New(4)
	g.AddArc(3, 1)
	g.AddArc(2, 1)
	g.AddArc(1, 0)
	a, _ := g.TopoSort()
	b, _ := g.TopoSort()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic topo: %v vs %v", a, b)
		}
	}
	// Smallest-first tie break: 2 before 3.
	if a[0] != 2 || a[1] != 3 {
		t.Fatalf("tie-break order %v, want [2 3 1 0]", a)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	if _, err := g.TopoSort(); err != ErrNotDAG {
		t.Fatalf("cycle: err=%v, want ErrNotDAG", err)
	}
	if g.IsDAG() {
		t.Fatal("IsDAG true for a cycle")
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New(1)
	g.AddArc(0, 0)
	if g.IsDAG() {
		t.Fatal("self loop considered a DAG")
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(3, 4)
	r := g.Reachable(0)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(r) != len(want) {
		t.Fatalf("reachable %v, want %v", r, want)
	}
	for v := range want {
		if !r[v] {
			t.Fatalf("node %d missing from %v", v, r)
		}
	}
}

func TestLongestPathFrom(t *testing.T) {
	g := New(5)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 3)
	g.AddArc(2, 3)
	g.AddArc(3, 4)
	dist, err := g.LongestPathFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist=%v, want %v", dist, want)
		}
	}
}

func TestLongestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddArc(1, 2)
	dist, err := g.LongestPathFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != -1 || dist[2] != -1 {
		t.Fatalf("unreachable dist=%v", dist)
	}
}

func TestLongestPathRejectsCycle(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	if _, err := g.LongestPathFrom(0); err != ErrNotDAG {
		t.Fatalf("err=%v, want ErrNotDAG", err)
	}
}

func TestArcsSorted(t *testing.T) {
	g := New(3)
	g.AddArc(2, 0)
	g.AddArc(0, 2)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	arcs := g.Arcs()
	want := []Arc{{0, 1}, {0, 2}, {1, 2}, {2, 0}}
	if len(arcs) != len(want) {
		t.Fatalf("arcs %v", arcs)
	}
	for i := range want {
		if arcs[i] != want[i] {
			t.Fatalf("arcs %v, want %v", arcs, want)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddArc out of range did not panic")
		}
	}()
	g := New(1)
	g.AddArc(0, 1)
}

// TestTopoSortPropertyRandomDAG checks, over random DAGs, that TopoSort
// returns a permutation consistent with every arc.
func TestTopoSortPropertyRandomDAG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		// Arcs only from lower to higher labels under a random permutation:
		// guaranteed acyclic.
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					g.AddArc(perm[i], perm[j])
				}
			}
		}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, a := range g.Arcs() {
			if pos[a.From] >= pos[a.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReachablePropertyClosure checks that Reachable is transitively closed.
func TestReachablePropertyClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for k := 0; k < 2*n; k++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		r := g.Reachable(0)
		for v := range r {
			for _, a := range g.Out(v) {
				if !r[a.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDot(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	var b strings.Builder
	err := g.WriteDot(&b, DotOptions{
		Name:      "test graph",
		NodeLabel: func(v int) string { return map[int]string{0: "s", 1: "t"}[v] },
		ArcLabel:  func(a Arc) string { return "cost=3" },
		ArcStyle:  func(a Arc) string { return "dashed" },
		Rankdir:   "LR",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`digraph "test graph"`, "rankdir=LR", `n0 [label="s"]`, `n1 [label="t"]`, "n0 -> n1", "cost=3", "dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDotDefaults(t *testing.T) {
	g := New(1)
	var b strings.Builder
	if err := g.WriteDot(&b, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "digraph G") || !strings.Contains(out, "rankdir=TB") {
		t.Errorf("defaults not applied:\n%s", out)
	}
}

func TestTranspose(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	tr := g.Transpose()
	if !tr.HasArc(1, 0) || !tr.HasArc(2, 1) || tr.HasArc(0, 1) {
		t.Fatalf("transpose arcs wrong: %v", tr.Arcs())
	}
	if tr.M() != g.M() || tr.N() != g.N() {
		t.Fatal("transpose changed size")
	}
	// Transposing twice restores the arc set.
	back := tr.Transpose()
	a, b := g.Arcs(), back.Arcs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("double transpose differs: %v vs %v", a, b)
		}
	}
}
