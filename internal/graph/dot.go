package graph

import (
	"fmt"
	"io"
	"strings"
)

// DotOptions controls DOT rendering of a digraph.
type DotOptions struct {
	// Name is the graph name; defaults to "G".
	Name string
	// NodeLabel, when non-nil, supplies a label per node ID.
	NodeLabel func(int) string
	// ArcLabel, when non-nil, supplies a label per arc (in Arcs() order
	// index). Empty labels are omitted.
	ArcLabel func(Arc) string
	// ArcStyle, when non-nil, supplies a DOT style (e.g. "dashed", "bold").
	ArcStyle func(Arc) string
	// Rankdir sets layout direction ("TB", "LR", ...); defaults to "TB".
	Rankdir string
}

// WriteDot renders the graph in Graphviz DOT format.
func (g *Digraph) WriteDot(w io.Writer, opt DotOptions) error {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	rank := opt.Rankdir
	if rank == "" {
		rank = "TB"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=%s;\n", dotID(name), rank)
	for v := 0; v < g.n; v++ {
		label := fmt.Sprintf("%d", v)
		if opt.NodeLabel != nil {
			label = opt.NodeLabel(v)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for _, a := range g.Arcs() {
		attrs := make([]string, 0, 2)
		if opt.ArcLabel != nil {
			if l := opt.ArcLabel(a); l != "" {
				attrs = append(attrs, fmt.Sprintf("label=%q", l))
			}
		}
		if opt.ArcStyle != nil {
			if s := opt.ArcStyle(a); s != "" {
				attrs = append(attrs, fmt.Sprintf("style=%q", s))
			}
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", a.From, a.To, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", a.From, a.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// dotID quotes a name when it is not a safe DOT identifier.
func dotID(s string) string {
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		if !(alpha || (i > 0 && digit)) {
			return fmt.Sprintf("%q", s)
		}
	}
	if s == "" {
		return `"G"`
	}
	return s
}
