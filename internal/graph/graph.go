// Package graph provides the directed-graph substrate used by the flow
// solvers and the network construction. Nodes are dense integer IDs so the
// solvers can use slice-indexed bookkeeping.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Digraph is a directed graph with dense integer node IDs. The zero value is
// an empty graph ready to use.
type Digraph struct {
	n    int
	out  [][]Arc
	in   [][]Arc
	arcs int
}

// Arc is a directed edge between two nodes.
type Arc struct {
	From, To int
}

// ErrNotDAG is returned by TopoSort when the graph contains a cycle.
var ErrNotDAG = errors.New("graph: not a DAG")

// New returns a digraph with n nodes and no arcs.
func New(n int) *Digraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Digraph{
		n:   n,
		out: make([][]Arc, n),
		in:  make([][]Arc, n),
	}
}

// N reports the number of nodes.
func (g *Digraph) N() int { return g.n }

// M reports the number of arcs.
func (g *Digraph) M() int { return g.arcs }

// AddNode appends a fresh node and returns its ID.
func (g *Digraph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.n++
	return g.n - 1
}

// AddArc inserts the arc u->v. Parallel arcs and self-loops are permitted;
// callers that need to forbid them check HasArc first.
func (g *Digraph) AddArc(u, v int) {
	g.check(u)
	g.check(v)
	a := Arc{u, v}
	g.out[u] = append(g.out[u], a)
	g.in[v] = append(g.in[v], a)
	g.arcs++
}

// HasArc reports whether at least one arc u->v exists.
func (g *Digraph) HasArc(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, a := range g.out[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// Out returns the arcs leaving u. The slice is owned by the graph.
func (g *Digraph) Out(u int) []Arc {
	g.check(u)
	return g.out[u]
}

// In returns the arcs entering v. The slice is owned by the graph.
func (g *Digraph) In(v int) []Arc {
	g.check(v)
	return g.in[v]
}

// OutDegree reports the number of arcs leaving u.
func (g *Digraph) OutDegree(u int) int { return len(g.Out(u)) }

// InDegree reports the number of arcs entering v.
func (g *Digraph) InDegree(v int) int { return len(g.In(v)) }

func (g *Digraph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// TopoSort returns a topological order of the nodes, or ErrNotDAG if the
// graph has a cycle. The order is deterministic (Kahn's algorithm with the
// smallest ready node chosen first).
func (g *Digraph) TopoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.in[v])
	}
	// Min-heap of ready nodes keeps the order deterministic.
	ready := &intHeap{}
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			ready.push(v)
		}
	}
	order := make([]int, 0, g.n)
	for ready.len() > 0 {
		u := ready.pop()
		order = append(order, u)
		for _, a := range g.out[u] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				ready.push(a.To)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrNotDAG
	}
	return order, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Digraph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Reachable returns the set of nodes reachable from src (including src).
func (g *Digraph) Reachable(src int) map[int]bool {
	g.check(src)
	seen := map[int]bool{src: true}
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.out[u] {
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return seen
}

// LongestPathFrom returns, for every node, the length (in arcs) of the
// longest path from src, or -1 when unreachable. The graph must be a DAG.
func (g *Digraph) LongestPathFrom(src int) ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	for _, u := range order {
		if dist[u] < 0 {
			continue
		}
		for _, a := range g.out[u] {
			if d := dist[u] + 1; d > dist[a.To] {
				dist[a.To] = d
			}
		}
	}
	return dist, nil
}

// Arcs returns every arc in a deterministic order (by From, then To,
// preserving insertion order among equals).
func (g *Digraph) Arcs() []Arc {
	all := make([]Arc, 0, g.arcs)
	for u := 0; u < g.n; u++ {
		all = append(all, g.out[u]...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		return all[i].To < all[j].To
	})
	return all
}

// intHeap is a tiny binary min-heap of ints; container/heap's interface
// indirection is not worth it for this hot path.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

// Transpose returns a new graph with every arc reversed.
func (g *Digraph) Transpose() *Digraph {
	t := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, a := range g.out[u] {
			t.AddArc(a.To, a.From)
		}
	}
	return t
}
