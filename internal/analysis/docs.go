package analysis

import (
	"fmt"
	"go/ast"
)

// docPass requires doc comments on the exported API of library packages
// (LEA0301) and a package doc comment on every library package (LEA0302).
// A name declared inside a documented const/var/type block inherits the
// block's comment, matching the convention the rest of the repo follows.
type docPass struct{}

// Name implements Pass.
func (docPass) Name() string { return "docs" }

// Doc implements Pass.
func (docPass) Doc() string {
	return "exported identifiers and library packages carry doc comments"
}

// Codes implements Pass.
func (docPass) Codes() []Code {
	return []Code{
		{ID: "LEA0301", Summary: "exported identifier has no doc comment"},
		{ID: "LEA0302", Summary: "library package has no package doc comment"},
	}
}

// Run implements Pass.
func (docPass) Run(p *Package) []Finding {
	if p.Name == "main" {
		return nil
	}
	var out []Finding
	hasPkgDoc := false
	for _, file := range p.Files {
		if file.Doc != nil {
			hasPkgDoc = true
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if exportedFuncName(d) && d.Doc == nil {
					out = append(out, Finding{
						Pos:  p.Fset.Position(d.Name.Pos()),
						Code: "LEA0301",
						Msg:  fmt.Sprintf("exported function %s has no doc comment", d.Name.Name),
					})
				}
			case *ast.GenDecl:
				out = append(out, checkGenDecl(p, d)...)
			}
		}
	}
	if !hasPkgDoc {
		out = append(out, Finding{
			Pos:  p.Fset.Position(p.Files[0].Name.Pos()),
			Code: "LEA0302",
			Msg:  fmt.Sprintf("package %s has no package doc comment", p.Name),
		})
	}
	return out
}

// checkGenDecl reports exported specs of a const/var/type declaration that
// carry no doc comment, neither on the spec nor on the enclosing block.
func checkGenDecl(p *Package, d *ast.GenDecl) []Finding {
	if d.Doc != nil {
		return nil
	}
	var out []Finding
	report := func(name *ast.Ident, kind string) {
		if !name.IsExported() {
			return
		}
		out = append(out, Finding{
			Pos:  p.Fset.Position(name.Pos()),
			Code: "LEA0301",
			Msg:  fmt.Sprintf("exported %s %s has no doc comment", kind, name.Name),
		})
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Doc == nil && s.Comment == nil {
				report(s.Name, "type")
			}
		case *ast.ValueSpec:
			if s.Doc == nil && s.Comment == nil {
				for _, name := range s.Names {
					report(name, "value")
				}
			}
		}
	}
	return out
}
