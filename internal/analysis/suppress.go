package analysis

import (
	"fmt"
	"strings"
)

// suppressions indexes lealint:ignore directives by file, line and code.
type suppressions map[string]map[int]map[string]bool

// matches reports whether the finding is silenced by an ignore directive on
// its line or the line directly above.
func (s suppressions) matches(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if lines[line][f.Code] {
			return true
		}
	}
	return false
}

// suppressedCode is one code named by a directive, with its per-code reason
// (empty when the directive relies on a shared trailing reason).
type suppressedCode struct {
	code   string
	reason string
}

// collectDirectives scans every comment of the package for
// "lealint:ignore ..." directives, validating each one. It returns the
// suppression index plus findings for broken directives: unknown or
// non-ignorable codes (LEA0010), directives naming no code at all (LEA0011),
// and suppressions with no reason (LEA0012). Directive findings are never
// themselves suppressible.
func collectDirectives(pkg *Package) (suppressions, []Finding) {
	known := KnownCodes()
	sup := make(suppressions)
	var out []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lealint:ignore")
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. "lealint:ignored" — not this directive
				}
				pos := pkg.Fset.Position(c.Pos())
				codes, shared := parseIgnoreDirective(rest)
				if len(codes) == 0 {
					out = append(out, Finding{Pos: pos, Code: "LEA0011",
						Msg: "lealint:ignore names no finding codes; nothing is suppressed"})
					continue
				}
				for _, sc := range codes {
					if _, exists := known[sc.code]; !exists {
						out = append(out, Finding{Pos: pos, Code: "LEA0010",
							Msg: fmt.Sprintf("lealint:ignore names unknown code %s; it suppresses nothing (run lealint -list for the code table)", sc.code)})
						continue
					}
					if how, no := nonIgnorable[sc.code]; no {
						out = append(out, Finding{Pos: pos, Code: "LEA0010",
							Msg: fmt.Sprintf("%s cannot be suppressed with lealint:ignore; %s", sc.code, how)})
						continue
					}
					if sc.reason == "" && shared == "" {
						out = append(out, Finding{Pos: pos, Code: "LEA0012",
							Msg: fmt.Sprintf("suppression of %s has no reason; add one in parentheses or as trailing text", sc.code)})
						continue
					}
					byLine := sup[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						sup[pos.Filename] = byLine
					}
					set := byLine[pos.Line]
					if set == nil {
						set = make(map[string]bool)
						byLine[pos.Line] = set
					}
					set[sc.code] = true
				}
			}
		}
	}
	return sup, out
}

// parseIgnoreDirective parses the text after "lealint:ignore": a sequence of
// LEA#### codes, each optionally followed by a parenthesised per-code reason,
// then optional shared trailing reason text. The first token that is not a
// code ends the code list.
func parseIgnoreDirective(rest string) (codes []suppressedCode, shared string) {
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if !looksLikeCode(rest) {
			return codes, rest
		}
		code := rest[:7]
		rest = rest[7:]
		reason := ""
		if strings.HasPrefix(rest, "(") {
			end := strings.IndexByte(rest, ')')
			if end < 0 {
				// Unterminated reason: treat the remainder as the reason.
				reason = strings.TrimSpace(rest[1:])
				rest = ""
			} else {
				reason = strings.TrimSpace(rest[1:end])
				rest = rest[end+1:]
			}
		}
		codes = append(codes, suppressedCode{code: code, reason: reason})
		rest = strings.TrimSpace(rest)
	}
	return codes, ""
}

// looksLikeCode reports whether s starts with a LEA#### token ending at a
// word boundary (space, "(" or end of text).
func looksLikeCode(s string) bool {
	if len(s) < 7 || s[:3] != "LEA" {
		return false
	}
	for i := 3; i < 7; i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) == 7 || s[7] == ' ' || s[7] == '\t' || s[7] == '('
}
