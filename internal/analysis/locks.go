package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// locksPass enforces the repo's mutex discipline in internal/ and cmd/
// packages (the exact bug class PR 7 fixed by hand in solveMerged):
//
//   - LEA0401: an Unlock/RUnlock in statement position instead of a defer —
//     an early return or panic between Lock and Unlock leaks the lock.
//     Extract the critical section into a helper with `defer`.
//   - LEA0402: a Lock/RLock with no release at all in the same function —
//     the function returns holding the lock.
//   - LEA0403: a blocking channel operation (send, receive, select without
//     default) while a lock is held. Non-blocking selects (with a default
//     clause) are fine: that is exactly how the engine's admission queue
//     rejects under load without stalling other lockers.
//   - LEA0404: acquiring a second lock while one is already held — lock
//     ordering is a global property no local reader can check, so nested
//     acquisitions are confined to dedicated helpers that make the order
//     auditable (take a snapshot under one lock, then merge under the other).
//
// The pass is syntactic and per-function: each function body (and each
// function literal, independently) is one scope. With the defer discipline
// the pass itself enforces, a lock is held from its acquisition statement to
// the end of the enclosing block, which is the region the pass models. It
// deliberately does not track locks handed across function boundaries;
// the repo's style keeps critical sections within one function.
type locksPass struct{}

// Name implements Pass.
func (locksPass) Name() string { return "locks" }

// Doc implements Pass.
func (locksPass) Doc() string {
	return "unlocks in defer position; no blocking channel ops or nested locks while held"
}

// Codes implements Pass.
func (locksPass) Codes() []Code {
	return []Code{
		{ID: "LEA0401", Summary: "manual Unlock/RUnlock; releases must be deferred"},
		{ID: "LEA0402", Summary: "lock acquired but never released in the same function"},
		{ID: "LEA0403", Summary: "blocking channel operation while a lock is held"},
		{ID: "LEA0404", Summary: "nested lock acquisition while another lock is held"},
	}
}

// Run implements Pass.
func (locksPass) Run(p *Package) []Finding {
	if !p.Internal() && !strings.HasPrefix(p.Rel, "cmd/") {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, sc := range lockScopes(file) {
			out = append(out, scanLockScope(p, sc)...)
		}
	}
	return out
}

// lockScope is one function body analysed independently: a top-level function
// or a function literal (goroutine bodies, closures).
type lockScope struct {
	name string
	body *ast.BlockStmt
}

// lockScopes collects every function body in the file. Function literals are
// separate scopes — a lock taken by a closure lives and dies with that
// closure's control flow, not its parent's.
func lockScopes(file *ast.File) []lockScope {
	var out []lockScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				out = append(out, lockScope{name: x.Name.Name, body: x.Body})
			}
		case *ast.FuncLit:
			out = append(out, lockScope{name: "function literal", body: x.Body})
		}
		return true
	})
	return out
}

// lockMethods classifies the mutex method names the pass recognises.
var lockMethods = map[string]bool{"Lock": true, "RLock": true}

// unlockMethods maps each acquisition method to its release.
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// lockCall decodes a call of the form recv.Lock() / recv.RUnlock() etc.,
// returning the rendered receiver chain ("e.mu", "entry.mu") and the method
// name. ok is false for anything that is not a mutex-shaped call.
func lockCall(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	m := sel.Sel.Name
	if !lockMethods[m] && !unlockMethods[m] {
		return "", "", false
	}
	r := renderChain(sel.X)
	if r == "" {
		return "", "", false
	}
	return r, m, true
}

// renderChain renders an ident/selector chain ("e.cache.mu"); other
// expression shapes yield "".
func renderChain(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := renderChain(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// scanLockScope walks one function body in source order, tracking which
// receivers are held, and emits the LEA040x findings. The held set is
// block-scoped: an acquisition inside a nested block (an if body, say) is
// considered released when the block ends, which matches the defer-in-helper
// discipline the pass enforces.
func scanLockScope(p *Package, sc lockScope) []Finding {
	var out []Finding
	report := func(pos token.Pos, code, msg string) {
		out = append(out, Finding{Pos: p.Fset.Position(pos), Code: code, Msg: msg})
	}

	// First pass: which receivers have any release (defer or manual) in this
	// scope? Acquisitions of receivers with no release at all are LEA0402.
	released := map[string]bool{}
	walkOwnNodes(sc.body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if recv, m, ok := lockCall(x.Call); ok && unlockMethods[m] {
				released[recv] = true
			}
		case *ast.ExprStmt:
			if call, isCall := x.X.(*ast.CallExpr); isCall {
				if recv, m, ok := lockCall(call); ok && unlockMethods[m] {
					released[recv] = true
				}
			}
		}
	})

	var walkList func(list []ast.Stmt, held []string) []string
	heldNames := func(held []string) string { return strings.Join(held, ", ") }

	// walkStmt advances the held set across one statement, recursing into its
	// blocks. Nested blocks get a copy of the set: their acquisitions expire
	// with the block.
	var walkStmt func(st ast.Stmt, held []string) []string
	walkStmt = func(st ast.Stmt, held []string) []string {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, isCall := s.X.(*ast.CallExpr); isCall {
				if recv, m, ok := lockCall(call); ok {
					switch {
					case lockMethods[m]:
						if len(held) > 0 {
							report(s.Pos(), "LEA0404",
								fmt.Sprintf("%s acquires %s.%s while already holding %s; confine nested locking to a dedicated snapshot/merge helper",
									sc.name, recv, m, heldNames(held)))
						}
						if !released[recv] {
							report(s.Pos(), "LEA0402",
								fmt.Sprintf("%s acquires %s.%s but never releases it in this function", sc.name, recv, m))
						}
						return append(append([]string(nil), held...), recv)
					case unlockMethods[m]:
						report(s.Pos(), "LEA0401",
							fmt.Sprintf("%s releases %s with a plain %s call; move the critical section into a helper with `defer %s.%s()`",
								sc.name, recv, m, recv, m))
						return removeHeld(held, recv)
					}
				}
			}
			reportBlockingRecv(p, sc, s, held, report)
		case *ast.DeferStmt:
			// A deferred unlock pairs with its acquisition; nothing to track —
			// the receiver stays held until the scope ends.
		case *ast.SendStmt:
			if len(held) > 0 {
				report(s.Arrow, "LEA0403",
					fmt.Sprintf("%s sends on a channel while holding %s; a blocked receiver would stall every other locker",
						sc.name, heldNames(held)))
			}
		case *ast.SelectStmt:
			if hasDefaultClause(s) {
				// Non-blocking: the comm clauses themselves are fine, but the
				// chosen case's body still runs under the lock.
				for _, cc := range s.Body.List {
					if clause, okc := cc.(*ast.CommClause); okc {
						walkList(clause.Body, held)
					}
				}
				return held
			}
			if len(held) > 0 {
				report(s.Select, "LEA0403",
					fmt.Sprintf("%s blocks in a select (no default) while holding %s", sc.name, heldNames(held)))
				return held
			}
			for _, cc := range s.Body.List {
				if clause, okc := cc.(*ast.CommClause); okc {
					walkList(clause.Body, held)
				}
			}
		case *ast.BlockStmt:
			walkList(s.List, held)
		case *ast.IfStmt:
			walkList(s.Body.List, held)
			if s.Else != nil {
				walkStmt(s.Else, held)
			}
		case *ast.ForStmt:
			walkList(s.Body.List, held)
		case *ast.RangeStmt:
			// Ranging over a channel blocks per iteration.
			if len(held) > 0 && isChanRangeExpr(s) {
				report(s.For, "LEA0403",
					fmt.Sprintf("%s ranges over a channel while holding %s", sc.name, heldNames(held)))
			}
			walkList(s.Body.List, held)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if clause, okc := cc.(*ast.CaseClause); okc {
					walkList(clause.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if clause, okc := cc.(*ast.CaseClause); okc {
					walkList(clause.Body, held)
				}
			}
		case *ast.LabeledStmt:
			return walkStmt(s.Stmt, held)
		case *ast.GoStmt:
			// The goroutines pass owns spawn hygiene (LEA0410/LEA0411).
		default:
			reportBlockingRecv(p, sc, st, held, report)
		}
		return held
	}

	walkList = func(list []ast.Stmt, held []string) []string {
		held = append([]string(nil), held...)
		for _, st := range list {
			held = walkStmt(st, held)
		}
		return held
	}

	walkList(sc.body.List, nil)
	return out
}

// removeHeld returns held without recv (first occurrence).
func removeHeld(held []string, recv string) []string {
	for i, h := range held {
		if h == recv {
			return append(append([]string(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}

// hasDefaultClause reports whether a select has a default clause (making it
// non-blocking).
func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
			return true
		}
	}
	return false
}

// isChanRangeExpr is a syntactic guess at "range over a channel": a bare
// range with no key/value is the common channel-drain shape; everything else
// (slices, maps) ranges with an index and never blocks.
func isChanRangeExpr(s *ast.RangeStmt) bool {
	return s.Key == nil && s.Value == nil
}

// reportBlockingRecv scans one leaf statement's expressions for channel
// receives (<-ch), which block like sends. Function literals inside the
// statement are separate scopes and are skipped.
func reportBlockingRecv(p *Package, sc lockScope, st ast.Stmt, held []string, report func(token.Pos, string, string)) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(st, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(x.OpPos, "LEA0403",
					fmt.Sprintf("%s receives from a channel while holding %s", sc.name, strings.Join(held, ", ")))
			}
		}
		return true
	})
}

// walkOwnNodes visits every node of body that belongs to this scope,
// skipping nested function literals.
func walkOwnNodes(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
