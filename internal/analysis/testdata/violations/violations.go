// This file is the linter's seeded-violation corpus: every finding below is
// deliberate and matched line-for-line against testdata/violations.golden.
// The comment is detached from the package clause by a blank line so the
// missing-package-doc rule (LEA0302) fires too. The directory lives under
// testdata/, so recursive walks ("./...") skip it and the repo stays
// lint-clean; the golden test names it explicitly.

package violations

import (
	"math/rand"
	"sync"
	"time"

	_ "repro/internal/unmapped"
)

// MaxTries is documented, so only Limit below trips the doc pass.
const MaxTries = 3

const Limit = 10

// Shuffle perturbs order through the unseeded global source (LEA0101).
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Stamp reads the wall clock twice: the first read is flagged (LEA0102),
// the second demonstrates lealint:ignore suppression.
func Stamp() (time.Time, time.Time) {
	flagged := time.Now()
	//lealint:ignore LEA0102 corpus demonstrates suppression
	suppressed := time.Now()
	return flagged, suppressed
}

// Explode panics from an exported entry point (LEA0201).
func Explode() {
	panic("boom")
}

func Undocumented() int { return Limit }

// BadUnlock releases its mutex manually at both exits (LEA0401, twice). The
// manual releases keep LEA0402 quiet: the lock IS released, just not safely —
// a panic between Lock and Unlock would leak it.
func BadUnlock(mu *sync.Mutex, xs []int) int {
	mu.Lock()
	if len(xs) == 0 {
		mu.Unlock()
		return 0
	}
	mu.Unlock()
	return xs[0]
}

// LeakLock acquires a lock with no release anywhere in the function
// (LEA0402); every caller after the first deadlocks.
func LeakLock(mu *sync.Mutex) {
	mu.Lock()
}

// SendLocked performs a blocking channel send while holding its mutex
// (LEA0403); a slow receiver would stall every other locker.
func SendLocked(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
}

// NestLocks acquires a second mutex while the first is held (LEA0404); lock
// ordering is a global property no local reader can verify, so the nesting
// itself is the finding.
func NestLocks(a, b *sync.Mutex) {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	defer b.Unlock()
}

// FireAndForget spawns a goroutine with no visible completion tie (LEA0410).
func FireAndForget(xs []int) {
	go func() {
		_ = len(xs)
	}()
}

// SpawnLocked spawns while holding its mutex (LEA0411); the goroutine itself
// is WaitGroup-tied, so only the lock finding fires.
func SpawnLocked(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// IgnoreUnknown carries a directive naming a code that does not exist
// (LEA0010); the directive suppresses nothing.
func IgnoreUnknown() int {
	//lealint:ignore LEA9999 no such code exists
	return Limit
}

// IgnoreEscape tries to suppress an escape-gate code, which is never
// ignorable (LEA0010): a //lea:allocs marker is the only valve there.
func IgnoreEscape() int {
	//lealint:ignore LEA0501 markers are the only valve
	return Limit
}

// IgnoreBare carries a directive that names no codes at all (LEA0011).
func IgnoreBare() int {
	//lealint:ignore
	return Limit
}

// IgnoreNoReason suppresses a real code but gives no reason (LEA0012), so
// the suppression is rejected and the panic below still surfaces (LEA0201).
func IgnoreNoReason() {
	//lealint:ignore LEA0201
	panic("still reported")
}

// Jitter reads both the global rand source and the wall clock on one line;
// the multi-code directive with per-code reasons suppresses both, so neither
// LEA0101 nor LEA0102 from this line appears in the golden output.
func Jitter() int64 {
	//lealint:ignore LEA0101(corpus demonstrates multi-code) LEA0102(corpus demonstrates multi-code)
	return time.Now().UnixNano() + int64(rand.Intn(16))
}
