// This file is the linter's seeded-violation corpus: every finding below is
// deliberate and matched line-for-line against testdata/violations.golden.
// The comment is detached from the package clause by a blank line so the
// missing-package-doc rule (LEA0302) fires too. The directory lives under
// testdata/, so recursive walks ("./...") skip it and the repo stays
// lint-clean; the golden test names it explicitly.

package violations

import (
	"math/rand"
	"time"

	_ "repro/internal/unmapped"
)

// MaxTries is documented, so only Limit below trips the doc pass.
const MaxTries = 3

const Limit = 10

// Shuffle perturbs order through the unseeded global source (LEA0101).
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Stamp reads the wall clock twice: the first read is flagged (LEA0102),
// the second demonstrates lealint:ignore suppression.
func Stamp() (time.Time, time.Time) {
	flagged := time.Now()
	//lealint:ignore LEA0102 corpus demonstrates suppression
	suppressed := time.Now()
	return flagged, suppressed
}

// Explode panics from an exported entry point (LEA0201).
func Explode() {
	panic("boom")
}

func Undocumented() int { return Limit }
