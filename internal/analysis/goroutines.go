package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// goroutinePass enforces goroutine-lifecycle hygiene in internal/ and cmd/
// packages: every `go` statement must be visibly tied to a completion
// mechanism, so no spawn is fire-and-forget.
//
//   - LEA0410: an untied spawn. A goroutine counts as tied when its function
//     literal body signals completion — a WaitGroup Done, a close(), or a
//     channel send — or, for a named call (`go e.worker()`), when the
//     statement immediately before the spawn is a WaitGroup Add (the
//     `wg.Add(1); go e.worker()` idiom, with `defer wg.Done()` inside).
//   - LEA0411: a spawn while a lock is held. The new goroutine races the
//     critical section that created it; move the spawn after the unlock.
//
// Like the locks pass this is syntactic and per-function; it encodes the
// repo's observed spawn idioms, not a general escape analysis. A tied-looking
// spawn that drops its Done on an error path is the -race detector's job;
// this pass guarantees reviewers see an explicit lifecycle at every site.
type goroutinePass struct{}

// Name implements Pass.
func (goroutinePass) Name() string { return "goroutines" }

// Doc implements Pass.
func (goroutinePass) Doc() string {
	return "every go statement tied to a WaitGroup, done-channel or send; no spawns under locks"
}

// Codes implements Pass.
func (goroutinePass) Codes() []Code {
	return []Code{
		{ID: "LEA0410", Summary: "fire-and-forget goroutine with no visible completion tie"},
		{ID: "LEA0411", Summary: "goroutine spawned while a lock is held"},
	}
}

// Run implements Pass.
func (goroutinePass) Run(p *Package) []Finding {
	if !p.Internal() && !strings.HasPrefix(p.Rel, "cmd/") {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, sc := range lockScopes(file) {
			out = append(out, scanSpawns(p, sc)...)
		}
	}
	return out
}

// scanSpawns walks one function body tracking held locks (same block-scoped
// model as the locks pass) and checks every go statement it owns.
func scanSpawns(p *Package, sc lockScope) []Finding {
	var out []Finding

	var walkList func(list []ast.Stmt, held int) int
	var walkStmt func(st ast.Stmt, prev ast.Stmt, held int) int
	walkStmt = func(st ast.Stmt, prev ast.Stmt, held int) int {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, isCall := s.X.(*ast.CallExpr); isCall {
				if _, m, ok := lockCall(call); ok {
					switch {
					case lockMethods[m]:
						return held + 1
					case unlockMethods[m]:
						if held > 0 {
							return held - 1
						}
					}
				}
			}
		case *ast.GoStmt:
			if held > 0 {
				out = append(out, Finding{
					Pos:  p.Fset.Position(s.Go),
					Code: "LEA0411",
					Msg:  fmt.Sprintf("%s spawns a goroutine while holding a lock; move the spawn after the critical section", sc.name),
				})
			}
			if !spawnTied(s, prev) {
				out = append(out, Finding{
					Pos:  p.Fset.Position(s.Go),
					Code: "LEA0410",
					Msg:  fmt.Sprintf("fire-and-forget goroutine in %s; tie it to a WaitGroup (Add before, defer Done inside), a done-channel close, or a result send", sc.name),
				})
			}
		case *ast.BlockStmt:
			walkList(s.List, held)
		case *ast.IfStmt:
			walkList(s.Body.List, held)
			if s.Else != nil {
				walkStmt(s.Else, nil, held)
			}
		case *ast.ForStmt:
			walkList(s.Body.List, held)
		case *ast.RangeStmt:
			walkList(s.Body.List, held)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if clause, okc := cc.(*ast.CaseClause); okc {
					walkList(clause.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if clause, okc := cc.(*ast.CaseClause); okc {
					walkList(clause.Body, held)
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if clause, okc := cc.(*ast.CommClause); okc {
					walkList(clause.Body, held)
				}
			}
		case *ast.LabeledStmt:
			return walkStmt(s.Stmt, prev, held)
		}
		return held
	}
	walkList = func(list []ast.Stmt, held int) int {
		var prev ast.Stmt
		for _, st := range list {
			held = walkStmt(st, prev, held)
			prev = st
		}
		return held
	}

	walkList(sc.body.List, 0)
	return out
}

// spawnTied reports whether a go statement is visibly tied to a completion
// mechanism (see the pass doc for the accepted idioms).
func spawnTied(s *ast.GoStmt, prev ast.Stmt) bool {
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		return bodySignalsCompletion(lit.Body)
	}
	// Named call: accept the `wg.Add(1); go e.worker()` idiom — the Done lives
	// inside the named function, out of this scope's sight, so the adjacent
	// Add is the visible half of the contract.
	return isWaitGroupAdd(prev)
}

// bodySignalsCompletion reports whether a spawned literal's body contains a
// completion signal: a WaitGroup Done (deferred or not), a close(), or a
// channel send. Nested function literals count — a goroutine that delegates
// its signalling to a helper closure is still tied.
func bodySignalsCompletion(body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			tied = true
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					tied = true
				}
			case *ast.Ident:
				if fun.Name == "close" && fun.Obj == nil {
					tied = true
				}
			}
		}
		return true
	})
	return tied
}

// isWaitGroupAdd reports whether a statement is a WaitGroup-style
// `recv.Add(...)` call.
func isWaitGroupAdd(st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Add" && renderChain(sel.X) != ""
}
