package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// panicPass enforces the repo's panic discipline in library packages (every
// non-main package): exported entry points return errors; a panic is
// acceptable only behind a constructor precondition (New*) or an explicit
// Must* variant, both of which advertise the contract in their name. Anything
// else is LEA0201 — allocation failures must surface as diagnostics, not
// crashes. Index-precondition panics that mirror slice semantics may be
// whitelisted per site with a lealint:ignore comment stating why.
type panicPass struct{}

// Name implements Pass.
func (panicPass) Name() string { return "panics" }

// Doc implements Pass.
func (panicPass) Doc() string {
	return "exported entry points return errors; panics only in New*/Must* preconditions"
}

// Codes implements Pass.
func (panicPass) Codes() []Code {
	return []Code{
		{ID: "LEA0201", Summary: "exported entry point panics instead of returning an error"},
	}
}

// Run implements Pass.
func (panicPass) Run(p *Package) []Finding {
	if p.Name == "main" {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedFuncName(fd) {
				continue
			}
			name := fd.Name.Name
			if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "New") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					// Closures may escape and run elsewhere; the pass targets
					// the exported function's direct control flow.
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Code: "LEA0201",
						Msg: fmt.Sprintf("exported %s panics; return an error (or rename to Must%s / move the precondition into a constructor)",
							name, name),
					})
				}
				return true
			})
		}
	}
	return out
}
