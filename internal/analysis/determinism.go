package analysis

import (
	"fmt"
	"go/ast"
)

// timeAllowed lists the internal packages permitted to read the wall clock:
// the solver stats plumbing times its own stages there, and the serving
// layer measures request latency. Everything else in internal/ must stay
// clock-free — the warm-start equality and byte-identical parallelism
// guarantees depend on replayable behaviour.
var timeAllowed = map[string]bool{
	"internal/flow":         true,
	"internal/core":         true,
	"internal/serve/engine": true,
	// The open-loop scheduler's whole job is wall-clock pacing and
	// intended-start latency measurement; its *schedules* stay deterministic
	// (seeded generators), only the measurement reads the clock.
	"internal/workload/generator": true,
	// Perf-trajectory records are timestamped provenance by definition, and
	// the collector paces scrapes and measures its own overhead; neither
	// feeds allocation results, so replayability is unaffected.
	"internal/perfobs":           true,
	"internal/perfobs/collector": true,
}

// randConstructors are the math/rand package-level names that do NOT touch
// the unseeded global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// determinismPass flags unseeded global math/rand use (LEA0101) anywhere in
// production code and wall-clock reads (LEA0102) outside the stats allowlist.
// Seeded sources (rand.New(rand.NewSource(seed))) are fine everywhere:
// experiments must be replayable, so randomness flows through an explicit
// *rand.Rand.
type determinismPass struct{}

// Name implements Pass.
func (determinismPass) Name() string { return "determinism" }

// Doc implements Pass.
func (determinismPass) Doc() string {
	return "no unseeded global math/rand; wall clock only in the stats allowlist"
}

// Codes implements Pass.
func (determinismPass) Codes() []Code {
	return []Code{
		{ID: "LEA0101", Summary: "unseeded global math/rand source in production code"},
		{ID: "LEA0102", Summary: "wall-clock read outside the stats allowlist"},
	}
}

// Run implements Pass.
func (determinismPass) Run(p *Package) []Finding {
	var out []Finding
	clockFree := p.Internal() && !timeAllowed[p.Rel]
	for _, file := range p.Files {
		randName := importAlias(file, "math/rand", "rand")
		timeName := importAlias(file, "time", "time")
		if randName == "" && (timeName == "" || !clockFree) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Obj != nil { // id.Obj != nil: a local shadowing the import
				return true
			}
			switch {
			case randName != "" && id.Name == randName && !randConstructors[sel.Sel.Name]:
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Code: "LEA0101",
					Msg: fmt.Sprintf("rand.%s uses the unseeded global source; thread a seeded *rand.Rand instead",
						sel.Sel.Name),
				})
			case clockFree && timeName != "" && id.Name == timeName &&
				(sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until"):
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Code: "LEA0102",
					Msg: fmt.Sprintf("time.%s reads the wall clock in %s, which is outside the stats allowlist (internal/analysis/determinism.go)",
						sel.Sel.Name, p.Rel),
				})
			}
			return true
		})
	}
	return out
}
