package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses the packages matched by patterns relative to the module rooted
// at dir. Patterns follow the go tool's shape: "./..." walks the whole module,
// "dir/..." walks a subtree, and a plain directory names one package.
// Recursive walks skip testdata, vendor and hidden directories (exactly like
// the go tool); naming such a directory explicitly parses it anyway, which is
// how the linter's own seeded-violation corpus is exercised. Test files are
// never loaded.
func Load(dir string, patterns []string) ([]*Package, error) {
	root, module, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := parseDir(fset, root, module, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Rel < pkgs[j].Rel })
	return pkgs, nil
}

// ModuleInfo resolves the enclosing module for dir: the root directory
// holding go.mod and the module path declared there.
func ModuleInfo(dir string) (root, module string, err error) {
	return moduleRoot(dir)
}

// moduleRoot walks upward from dir to the enclosing go.mod and returns the
// root directory and module path.
func moduleRoot(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// parseDir parses the non-test Go files of one directory into a Package;
// directories without Go files yield nil.
func parseDir(fset *token.FileSet, root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	pkg := &Package{Rel: rel, Module: module, Fset: fset}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		relFile := name
		if rel != "." {
			relFile = rel + "/" + name
		}
		// Register the file under its module-relative name so findings render
		// stable, root-relative positions.
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(fset, relFile, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.Name = pkg.Files[0].Name.Name
	return pkg, nil
}
