package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Code is one stable LEA#### finding identifier a pass can emit, with a
// one-line summary for lealint -list and the README code table.
type Code struct {
	// ID is the LEA#### identifier.
	ID string
	// Summary describes the rule the code enforces.
	Summary string
}

// directiveCodes are the findings the suppression scanner itself emits when
// an ignore directive is broken. They belong to no pass (the scanner always
// runs) and are never themselves suppressible — a directive cannot vouch for
// another directive.
var directiveCodes = []Code{
	{ID: "LEA0010", Summary: "lealint:ignore names an unknown (or non-ignorable) finding code"},
	{ID: "LEA0011", Summary: "lealint:ignore carries no finding codes; it suppresses nothing"},
	{ID: "LEA0012", Summary: "lealint:ignore suppression has no reason, neither per-code nor shared"},
}

// escapeCodes mirrors the LEA05xx family emitted by internal/analysis/escape
// (the compile-time noalloc gate). They are listed here so the suppression
// scanner can tell a typo from a deliberate-but-unsupported suppression:
// escape findings are never silenced with lealint:ignore — cold allocation
// sites inside a noalloc zone are declared with a //lea:allocs marker instead.
var escapeCodes = []Code{
	{ID: "LEA0501", Summary: "allocation or heap escape inside a noalloc zone without a //lea:allocs marker"},
	{ID: "LEA0502", Summary: "stale //lea:allocs marker: no compiler diagnostic matches it (or it lacks a reason)"},
	{ID: "LEA0503", Summary: "noalloc zone map and //lea:noalloc annotations disagree"},
}

// registry holds the registered pass set in reporting order.
var registry []Pass

// MustRegister adds a pass to the registry, panicking on a duplicate pass
// name or finding code — a registration bug that must fail loudly at init
// time, not lint time.
func MustRegister(p Pass) {
	known := KnownCodes()
	for _, existing := range registry {
		if existing.Name() == p.Name() {
			panic(fmt.Sprintf("analysis: duplicate pass name %q", p.Name()))
		}
	}
	for _, c := range p.Codes() {
		if _, dup := known[c.ID]; dup {
			panic(fmt.Sprintf("analysis: pass %q re-registers finding code %s", p.Name(), c.ID))
		}
	}
	registry = append(registry, p)
}

func init() {
	MustRegister(layeringPass{})
	MustRegister(determinismPass{})
	MustRegister(panicPass{})
	MustRegister(docPass{})
	MustRegister(locksPass{})
	MustRegister(goroutinePass{})
}

// Passes returns the registered pass set, in reporting order.
func Passes() []Pass {
	out := make([]Pass, len(registry))
	copy(out, registry)
	return out
}

// SelectPasses resolves a list of pass names (as printed by lealint -list)
// to passes, preserving registry order. An empty list selects every pass;
// an unknown name is an error listing the valid names.
func SelectPasses(names []string) ([]Pass, error) {
	if len(names) == 0 {
		return Passes(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n != "" {
			want[n] = true
		}
	}
	var out []Pass
	for _, p := range registry {
		if want[p.Name()] {
			out = append(out, p)
			delete(want, p.Name())
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		valid := make([]string, 0, len(registry))
		for _, p := range registry {
			valid = append(valid, p.Name())
		}
		return nil, fmt.Errorf("analysis: unknown pass(es) %s; valid: %s",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return out, nil
}

// KnownCodes maps every finding code the toolchain can emit — registered
// passes, the directive scanner and the escape gate — to its description.
func KnownCodes() map[string]Code {
	out := make(map[string]Code)
	for _, p := range registry {
		for _, c := range p.Codes() {
			out[c.ID] = c
		}
	}
	for _, c := range directiveCodes {
		out[c.ID] = c
	}
	for _, c := range escapeCodes {
		out[c.ID] = c
	}
	return out
}

// nonIgnorable lists known codes that lealint:ignore cannot silence, mapped
// to the mechanism that replaces site suppression for them.
var nonIgnorable = map[string]string{
	"LEA0010": "fix the directive instead",
	"LEA0011": "fix the directive instead",
	"LEA0012": "fix the directive instead",
	"LEA0501": "declare the cold allocation with a //lea:allocs marker",
	"LEA0502": "remove or repair the stale //lea:allocs marker",
	"LEA0503": "align the zone map and //lea:noalloc annotations",
}
