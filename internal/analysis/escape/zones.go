package escape

// ZoneFunc names one function of a zone package that must stay
// allocation-free on its steady-state path. Names are unqualified for
// package-level functions ("sspRange") and "Type.Method" for methods, with
// pointer receivers stripped ("Network.SolveWithCostsInto").
type ZoneFunc struct {
	// Name identifies the function within its package.
	Name string
	// Root marks the zone's public entry points: exactly the functions the
	// runtime AllocsPerRun tests assert at 0 allocs/op. CrossCheck keeps the
	// two lists equal so the static gate and the runtime tests cannot drift.
	Root bool
}

// Zone is one package's noalloc region: the set of functions on a
// steady-state hot path. Every listed function must carry a //lea:noalloc
// annotation at its declaration (and vice versa — an annotated function must
// be listed here); the gate reports drift in either direction as LEA0503.
type Zone struct {
	// Pkg is the module-relative package directory.
	Pkg string
	// Funcs are the zone's member functions.
	Funcs []ZoneFunc
}

// Zones returns the checked-in noalloc zone map: the warm `…Into` solve path
// in internal/flow (PR 7's zero-alloc contract), the sweep runner's column
// loop, and the serve engine's per-worker batch staging. Cold sub-paths
// inside these functions (error formatting, first-use growth) are declared
// per line with //lea:allocs markers; everything else must not allocate.
func Zones() []Zone {
	return []Zone{
		{Pkg: "internal/flow", Funcs: []ZoneFunc{
			// The warm-solve public entry points, AllocsPerRun-asserted.
			{Name: "Network.SolveWithCostsInto", Root: true},
			{Name: "Network.MinCostFlowValueWithCostsInto", Root: true},
			{Name: "Network.SolveBatchWithCostsInto", Root: true},
			// The shared warm-solve internals those entry points drive.
			{Name: "Network.solveWithCosts"},
			{Name: "Network.solveBatch"},
			{Name: "Scratch.installCosts"},
			{Name: "Scratch.preparedFor"},
			{Name: "Scratch.batchPreparedFor"},
			{Name: "Scratch.patchSupplies"},
			{Name: "Scratch.restoreResidual"},
			{Name: "Scratch.validPotentials"},
			{Name: "costsEqual"},
			// The SSP engine under the warm path: pathfinding, potentials,
			// both priority queues.
			{Name: "ssp"},
			{Name: "sspRange"},
			{Name: "initPotentials"},
			{Name: "dagRelax"},
			{Name: "repairPotentials"},
			{Name: "bellmanFord"},
			{Name: "dijkstra"},
			{Name: "dijkstraHeap"},
			{Name: "dijkstraDial"},
			{Name: "dialBuckets"},
			{Name: "payHeap.push"},
			{Name: "payHeap.pop"},
			{Name: "dialQueue.reset"},
			{Name: "dialQueue.push"},
			{Name: "dialQueue.pop"},
			{Name: "gcd64"},
			{Name: "gcdSlice"},
		}},
		{Pkg: "internal/sweep", Funcs: []ZoneFunc{
			// The per-divisor warm column solve inside Runner.Run's sweep.
			{Name: "Runner.solveColumn"},
		}},
		{Pkg: "internal/serve/engine", Funcs: []ZoneFunc{
			// The worker's batch-coalescing loop and its staging storage.
			{Name: "Engine.worker"},
			{Name: "Engine.tryDequeue"},
			{Name: "Engine.runBatch"},
			{Name: "batchStage.begin"},
			{Name: "Engine.solveUnits"},
			{Name: "Engine.solveSolo"},
			{Name: "batchUnit.solve"},
		}},
	}
}
