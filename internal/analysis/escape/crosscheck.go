package escape

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// CrossCheck verifies that the zone map's Root functions and the runtime
// zero-alloc assertions name the same API: for every zone package, the set
// of `…Into` functions exercised inside testing.AllocsPerRun closures in the
// package's tests must equal the set of Root-marked zone functions. Either
// direction of drift — a Root function with no 0 allocs/op assertion, or an
// AllocsPerRun-asserted warm entry point the zone map doesn't gate — is an
// error naming both sets.
//
// dir may be the module root or any directory below it. The check parses
// test files directly (analysis.Load deliberately never loads tests).
func CrossCheck(dir string) error {
	root, _, err := analysis.ModuleInfo(dir)
	if err != nil {
		return err
	}
	for _, z := range Zones() {
		roots := make(map[string]bool)
		for _, f := range z.Funcs {
			if f.Root {
				roots[baseName(f.Name)] = true
			}
		}
		asserted, err := allocsPerRunCallees(filepath.Join(root, filepath.FromSlash(z.Pkg)))
		if err != nil {
			return fmt.Errorf("escape: crosscheck %s: %w", z.Pkg, err)
		}
		if len(roots) == 0 && len(asserted) == 0 {
			continue
		}
		var missing, unzoned []string
		for name := range roots {
			if !asserted[name] {
				missing = append(missing, name)
			}
		}
		for name := range asserted {
			if !roots[name] {
				unzoned = append(unzoned, name)
			}
		}
		sort.Strings(missing)
		sort.Strings(unzoned)
		if len(missing) > 0 {
			return fmt.Errorf("escape: crosscheck %s: zone roots %s have no testing.AllocsPerRun assertion; add a zero-alloc test or unroot them in zones.go",
				z.Pkg, strings.Join(missing, ", "))
		}
		if len(unzoned) > 0 {
			return fmt.Errorf("escape: crosscheck %s: AllocsPerRun asserts %s but the zone map does not root them; add them to zones.go",
				z.Pkg, strings.Join(unzoned, ", "))
		}
	}
	return nil
}

// baseName strips the "Type." qualifier from a zone-map function name.
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// allocsPerRunCallees parses a package directory's test files and returns
// the warm-API function names (the `…Into` naming convention) called inside
// testing.AllocsPerRun closures.
func allocsPerRunCallees(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AllocsPerRun" {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := inner.Fun.(type) {
				case *ast.SelectorExpr:
					if strings.HasSuffix(fun.Sel.Name, "Into") {
						out[fun.Sel.Name] = true
					}
				case *ast.Ident:
					if strings.HasSuffix(fun.Name, "Into") {
						out[fun.Name] = true
					}
				}
				return true
			})
			return true
		})
	}
	return out, nil
}
