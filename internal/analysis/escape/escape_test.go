package escape

import (
	"go/token"
	"strings"
	"testing"
)

// TestMatchDiagnostics exercises the marker pairing rules on synthetic
// inputs: an unmarked in-zone diagnostic is LEA0501, a marker on the
// diagnostic's line or the line above consumes it, an unconsumed marker is
// stale (LEA0502), and diagnostics outside every zone span are ignored.
func TestMatchDiagnostics(t *testing.T) {
	spans := []zoneSpan{{name: "Network.SolveWithCostsInto", file: "f.go", start: 10, end: 30}}
	markers := map[string]map[int]*marker{
		"f.go": {
			19: {pos: token.Position{Filename: "f.go", Line: 19}, reason: "growth"},
			25: {pos: token.Position{Filename: "f.go", Line: 25}, reason: "obsolete"},
		},
	}
	diags := []Diagnostic{
		{File: "f.go", Line: 15, Col: 3, Msg: "make([]int64, n) escapes to heap"}, // unmarked -> LEA0501
		{File: "f.go", Line: 20, Col: 7, Msg: "moved to heap: order"},             // marker on line above
		{File: "f.go", Line: 40, Col: 1, Msg: "x escapes to heap"},                // outside the zone
		{File: "g.go", Line: 15, Col: 1, Msg: "y escapes to heap"},                // other file
	}
	findings := matchDiagnostics(diags, spans, markers)
	var got501, got502 int
	for _, f := range findings {
		switch f.Code {
		case "LEA0501":
			got501++
			if f.Pos.Line != 15 {
				t.Errorf("LEA0501 at line %d, want 15", f.Pos.Line)
			}
			if !strings.Contains(f.Msg, "Network.SolveWithCostsInto") {
				t.Errorf("LEA0501 message does not name the zone function: %s", f.Msg)
			}
		case "LEA0502":
			got502++
			if f.Pos.Line != 25 {
				t.Errorf("stale LEA0502 at line %d, want 25", f.Pos.Line)
			}
		default:
			t.Errorf("unexpected code %s", f.Code)
		}
	}
	if got501 != 1 || got502 != 1 {
		t.Errorf("got %d LEA0501 and %d LEA0502 findings, want 1 and 1", got501, got502)
	}
}

// TestGateWithSyntheticBuild drives GateWith against the real zone map and
// source tree but a fake compiler: it asserts end to end that a new
// allocation diagnostic landing inside a real zone function produces a
// positioned LEA0501 naming that function — the "adding fmt.Sprintf to the
// hot path fails CI" acceptance property, without depending on toolchain
// output stability.
func TestGateWithSyntheticBuild(t *testing.T) {
	probe := map[string]Diagnostic{}
	findings, err := GateWith("../../..", func(root, importPath, rel string) ([]byte, error) {
		if rel != "internal/sweep" {
			return nil, nil
		}
		// Synthesise one allocation inside Runner.solveColumn. The span is
		// known to the gate, not to us, so probe line 1..2000 cheaply instead:
		// emit a diagnostic on every line; exactly the in-span ones surface.
		var sb strings.Builder
		for line := 1; line <= 2000; line++ {
			sb.WriteString("internal/sweep/runner.go:")
			sb.WriteString(itoa(line))
			sb.WriteString(":1: probe escapes to heap\n")
		}
		return []byte(sb.String()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n501 := 0
	for _, f := range findings {
		switch f.Code {
		case "LEA0502":
			// Expected: the fake build returns no diagnostics for the flow and
			// engine zones, so their real //lea:allocs markers read as stale.
			continue
		case "LEA0501":
			n501++
			if !strings.Contains(f.Msg, "Runner.solveColumn") {
				t.Fatalf("finding does not attribute to the zone function: %s", f.Msg)
			}
			probe[f.Pos.Filename] = Diagnostic{File: f.Pos.Filename, Line: f.Pos.Line}
		default:
			t.Fatalf("unexpected finding %s", f)
		}
	}
	if n501 == 0 {
		t.Fatal("no LEA0501 findings; the probe diagnostics never landed inside Runner.solveColumn's span")
	}
	if len(probe) != 1 {
		t.Fatalf("findings span %d files, want only internal/sweep/runner.go", len(probe))
	}
}

// itoa is a tiny strconv.Itoa stand-in to keep the probe loop allocation-free
// of fmt.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestGateSelfHost runs the full gate — real compiler, real zone map —
// against the repository itself. A clean tree is the acceptance criterion:
// every allocation diagnostic inside a zone is either eliminated or carries
// a reasoned //lea:allocs marker, and no marker is stale.
func TestGateSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	findings, err := Gate("../../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestCrossCheckSelfHost pins the zone map's Root set to the AllocsPerRun
// zero-alloc assertions: both name the same warm API.
func TestCrossCheckSelfHost(t *testing.T) {
	if err := CrossCheck("../../.."); err != nil {
		t.Error(err)
	}
}

// TestZonesWellFormed sanity-checks the zone map shape: non-empty package
// paths and unique function names within a zone. Root marks are optional per
// zone (only the flow warm API carries runtime AllocsPerRun assertions), but
// at least one zone must have them or the crosscheck pins nothing.
func TestZonesWellFormed(t *testing.T) {
	totalRoots := 0
	seenPkg := map[string]bool{}
	for _, z := range Zones() {
		if z.Pkg == "" {
			t.Fatal("zone with empty package path")
		}
		if seenPkg[z.Pkg] {
			t.Errorf("duplicate zone package %s", z.Pkg)
		}
		seenPkg[z.Pkg] = true
		roots := 0
		seenFunc := map[string]bool{}
		for _, f := range z.Funcs {
			if f.Name == "" {
				t.Errorf("zone %s has a function with no name", z.Pkg)
			}
			if seenFunc[f.Name] {
				t.Errorf("zone %s lists %s twice", z.Pkg, f.Name)
			}
			seenFunc[f.Name] = true
			if f.Root {
				roots++
			}
		}
		totalRoots += roots
	}
	if totalRoots == 0 {
		t.Error("no zone has Root functions; the AllocsPerRun crosscheck pins nothing")
	}
}
