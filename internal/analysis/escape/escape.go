// Package escape is the compile-time noalloc gate: it drives the real Go
// compiler's escape analysis (`go build -gcflags='<pkg>=-m=2'`) over the
// checked-in noalloc zone map (Zones) and fails when an allocation or heap
// escape lands inside a zone function without a //lea:allocs marker.
//
// It turns PR 7's runtime-only zero-alloc guarantee (testing.AllocsPerRun
// assertions) into a static CI gate: a new fmt.Sprintf or escaping closure on
// the warm path is a positioned lint finding at build time, not a perf-gate
// drift discovered later.
//
// Annotation grammar:
//
//	//lea:noalloc
//	    on a zone function's doc comment — declares membership, and must
//	    agree with the zone map in both directions (LEA0503 otherwise).
//	//lea:allocs <reason>
//	    on an allocation's line or the line above — declares a deliberate
//	    cold-path allocation inside a zone (error formatting, first-use
//	    growth). A marker no compiler diagnostic matches is stale (LEA0502),
//	    so markers cannot rot when the code below them changes.
//
// Unmarked allocations inside a zone are LEA0501. Escape findings are never
// suppressible with lealint:ignore — the marker IS the suppression, kept
// honest by staleness checking.
package escape

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

// BuildFunc compiles one package (named by import path and module-relative
// directory) with escape diagnostics enabled and returns the raw compiler
// output. Tests substitute pinned fixture output here.
type BuildFunc func(root, importPath, rel string) ([]byte, error)

// Gate runs the noalloc gate over every zone, shelling out to the real
// compiler, and returns the LEA05xx findings (empty when the repo is clean).
// dir may be the module root or any directory below it.
func Gate(dir string) ([]analysis.Finding, error) {
	return GateWith(dir, compilerBuild)
}

// GateWith is Gate with an explicit compiler front-end (see BuildFunc).
func GateWith(dir string, build BuildFunc) ([]analysis.Finding, error) {
	root, module, err := analysis.ModuleInfo(dir)
	if err != nil {
		return nil, err
	}
	var out []analysis.Finding
	for _, z := range Zones() {
		pkgs, err := analysis.Load(root, []string{z.Pkg})
		if err != nil {
			return nil, fmt.Errorf("escape: zone %s: %w", z.Pkg, err)
		}
		if len(pkgs) != 1 {
			return nil, fmt.Errorf("escape: zone %s matched %d packages, want 1", z.Pkg, len(pkgs))
		}
		pkg := pkgs[0]
		spans, driftFindings := zoneSpans(pkg, z)
		out = append(out, driftFindings...)
		markers, markerFindings := collectMarkers(pkg)
		out = append(out, markerFindings...)
		raw, err := build(root, module+"/"+z.Pkg, z.Pkg)
		if err != nil {
			return nil, err
		}
		out = append(out, matchDiagnostics(ParseDiagnostics(raw), spans, markers)...)
	}
	analysis.SortFindings(out)
	return out, nil
}

// compilerBuild invokes the real toolchain. The per-package -gcflags pattern
// scopes -m=2 to the zone package itself, so dependency compilation stays
// quiet; the build cache replays diagnostics for unchanged packages.
func compilerBuild(root, importPath, rel string) ([]byte, error) {
	cmd := exec.Command("go", "build", "-gcflags", importPath+"=-m=2", "./"+rel)
	cmd.Dir = root
	raw, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("escape: go build %s failed: %v\n%s", rel, err, raw)
	}
	return raw, nil
}

// zoneSpan is the source extent of one zone function.
type zoneSpan struct {
	name       string
	file       string
	start, end int // line range, inclusive
}

// zoneSpans resolves the zone's functions to source spans and cross-checks
// the //lea:noalloc annotations against the zone map, reporting LEA0503 for
// drift in either direction (a mapped function that is missing or
// unannotated, or an annotated function the map does not list).
func zoneSpans(pkg *analysis.Package, z Zone) ([]zoneSpan, []analysis.Finding) {
	wanted := make(map[string]bool, len(z.Funcs))
	for _, f := range z.Funcs {
		wanted[f.Name] = true
	}
	var spans []zoneSpan
	var out []analysis.Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := funcName(fd)
			annotated := hasNoallocAnnotation(fd)
			pos := pkg.Fset.Position(fd.Name.Pos())
			switch {
			case wanted[name] && !annotated:
				out = append(out, analysis.Finding{Pos: pos, Code: "LEA0503",
					Msg: fmt.Sprintf("%s is in the noalloc zone map but has no //lea:noalloc annotation", name)})
			case !wanted[name] && annotated:
				out = append(out, analysis.Finding{Pos: pos, Code: "LEA0503",
					Msg: fmt.Sprintf("%s is annotated //lea:noalloc but missing from the zone map (internal/analysis/escape/zones.go)", name)})
			}
			if wanted[name] {
				delete(wanted, name)
				spans = append(spans, zoneSpan{
					name:  name,
					file:  pos.Filename,
					start: pkg.Fset.Position(fd.Pos()).Line,
					end:   pkg.Fset.Position(fd.End()).Line,
				})
			}
		}
	}
	for name := range wanted {
		out = append(out, analysis.Finding{
			Pos:  pkg.Fset.Position(pkg.Files[0].Name.Pos()),
			Code: "LEA0503",
			Msg:  fmt.Sprintf("zone map lists %s.%s but no such function exists; update internal/analysis/escape/zones.go", z.Pkg, name),
		})
	}
	return spans, out
}

// funcName renders a FuncDecl as its zone-map name: "name" for package-level
// functions, "Type.name" for methods (pointer receivers stripped).
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// hasNoallocAnnotation reports whether the function's doc comment contains a
// //lea:noalloc directive line.
func hasNoallocAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "lea:noalloc" {
			return true
		}
	}
	return false
}

// marker is one //lea:allocs declaration.
type marker struct {
	pos    token.Position
	reason string
	used   bool
}

// collectMarkers gathers every //lea:allocs marker of the package, keyed by
// file and line. A marker without a reason is itself a finding (LEA0502):
// the reason is the documentation that justifies the cold allocation.
func collectMarkers(pkg *analysis.Package) (map[string]map[int]*marker, []analysis.Finding) {
	markers := make(map[string]map[int]*marker)
	var out []analysis.Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lea:allocs")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(rest)
				if reason == "" {
					out = append(out, analysis.Finding{Pos: pos, Code: "LEA0502",
						Msg: "//lea:allocs marker has no reason; state why this cold-path allocation is acceptable"})
					continue
				}
				byLine := markers[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*marker)
					markers[pos.Filename] = byLine
				}
				byLine[pos.Line] = &marker{pos: pos, reason: reason}
			}
		}
	}
	return markers, out
}

// matchDiagnostics pairs compiler diagnostics with zone spans and markers:
// an in-zone diagnostic with no marker on its line (or the line above) is
// LEA0501; a marker no diagnostic consumed is stale, LEA0502. Diagnostics
// outside every zone span are ignored — cold code may allocate freely.
func matchDiagnostics(diags []Diagnostic, spans []zoneSpan, markers map[string]map[int]*marker) []analysis.Finding {
	var out []analysis.Finding
	for _, d := range diags {
		span, ok := spanContaining(spans, d.File, d.Line)
		if !ok {
			continue
		}
		if m := markerFor(markers, d.File, d.Line); m != nil {
			m.used = true
			continue
		}
		out = append(out, analysis.Finding{
			Pos:  token.Position{Filename: d.File, Line: d.Line, Column: d.Col},
			Code: "LEA0501",
			Msg: fmt.Sprintf("%s inside noalloc zone %s; eliminate the allocation or declare it cold with a //lea:allocs <reason> marker",
				d.Msg, span.name),
		})
	}
	for _, byLine := range markers {
		for _, m := range byLine {
			if !m.used {
				out = append(out, analysis.Finding{Pos: m.pos, Code: "LEA0502",
					Msg: "stale //lea:allocs marker: no compiler allocation diagnostic matches this line or the line below"})
			}
		}
	}
	return out
}

// spanContaining finds the zone span covering a position, if any.
func spanContaining(spans []zoneSpan, file string, line int) (zoneSpan, bool) {
	for _, s := range spans {
		if s.file == file && line >= s.start && line <= s.end {
			return s, true
		}
	}
	return zoneSpan{}, false
}

// markerFor looks up a marker on the diagnostic's own line (trailing
// comment) or the line directly above it.
func markerFor(markers map[string]map[int]*marker, file string, line int) *marker {
	byLine := markers[file]
	if byLine == nil {
		return nil
	}
	if m := byLine[line]; m != nil {
		return m
	}
	return byLine[line-1]
}
