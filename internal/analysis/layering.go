package analysis

import (
	"fmt"
	"strings"
)

// Layer ranks for every internal package: a package may import another
// internal package only when the importee's rank is strictly lower. The ranks
// encode the repo's architecture — solver substrate (flow, graph) at the
// bottom, the lifetime/netbuild model in the middle, core stitching the
// allocation pipeline together, and the program-level drivers (pipeline,
// report) on top. In particular internal/flow and internal/graph can never
// reach internal/ir or internal/sched, and nothing below internal/core may
// depend on it.
//
// New internal and cmd packages must be added here; an unmapped package is
// itself a finding (LEA0002), so the map cannot silently rot. The cmd tier
// (rank 100) sits above every library rank: commands may import any internal
// package but nothing may import a command.
var layerRank = map[string]int{
	"internal/analysis": 0,
	"internal/graph":    0,
	"internal/energy":   0,
	// The escape gate drives the real compiler and reports through the
	// analysis Finding type, so it sits one rank above the pure-AST linter.
	"internal/analysis/escape": 1,
	"internal/flow":            1,
	"internal/ir":              1,
	"internal/trace":           1,
	"internal/sched":           2,
	"internal/opt":             2,
	"internal/regen":           2,
	"internal/lifetime":        3,
	"internal/netbuild":        4,
	"internal/workload":        4,
	"internal/check":           5,
	"internal/core":            6,
	"internal/baseline":        7,
	"internal/moa":             7,
	"internal/viz":             7,
	"internal/sweep":           7,
	"internal/simulate":        7,
	// The perf-observability stack: the verdict kit (stats) is a leaf, the
	// record schema sits above it, and the store/collector/report layers build
	// strictly upward. Nothing here may touch the serve stack — the collector
	// reaches a daemon only over HTTP, so a perf regression in perfobs can
	// never deadlock or slow the serving path it is measuring.
	"internal/perfobs/stats":     0,
	"internal/perfobs":           1,
	"internal/perfobs/store":     2,
	"internal/perfobs/collector": 2,
	"internal/perfobs/report":    3,
	// The serving stack: the pure request engine sits below the shard router
	// and the HTTP transport; shard and transport share a rank, so neither
	// can import the other — both compose only downward through the engine.
	"internal/serve/engine":    7,
	"internal/serve/shard":     8,
	"internal/serve/transport": 8,
	// The load-generation substrate sits above the serve engine (it reuses
	// the engine's histogram/registry metrics for its per-phase latency
	// accounting) but below the commands that drive it; internal/workload
	// itself stays a rank-4 corpus library and must not import it.
	"internal/workload/generator": 8,
	"internal/memmap":             8,
	"internal/exact":              8,
	"internal/emit":               8,
	"internal/actmem":             9,
	"internal/pipeline":           9,
	"internal/report":             10,
	"cmd/leabench":                100,
	"cmd/leaflow":                 100,
	"cmd/leagen":                  100,
	"cmd/lealint":                 100,
	"cmd/leaload":                 100,
	"cmd/leaperf":                 100,
	"cmd/leaserved":               100,
	"cmd/leasweep":                100,
}

// layeringPass enforces the layer ranks (codes LEA0001, LEA0002) over
// internal/ and cmd/ packages. The root package and examples/ sit above the
// whole DAG and may import anything.
type layeringPass struct{}

// Name implements Pass.
func (layeringPass) Name() string { return "layering" }

// Doc implements Pass.
func (layeringPass) Doc() string {
	return "internal packages import strictly downward through the layer ranks"
}

// Codes implements Pass.
func (layeringPass) Codes() []Code {
	return []Code{
		{ID: "LEA0001", Summary: "internal import goes upward or sideways through the layer ranks"},
		{ID: "LEA0002", Summary: "internal or cmd package missing from the layer map"},
	}
}

// Run implements Pass.
func (layeringPass) Run(p *Package) []Finding {
	if !p.Internal() && !strings.HasPrefix(p.Rel, "cmd/") {
		return nil
	}
	var out []Finding
	rank, mapped := layerRank[p.Rel]
	if !mapped {
		pos := p.Fset.Position(p.Files[0].Name.Pos())
		out = append(out, Finding{
			Pos:  pos,
			Code: "LEA0002",
			Msg:  fmt.Sprintf("package %s is not in the layer map (internal/analysis/layering.go); assign it a rank", p.Rel),
		})
	}
	prefix := p.Module + "/internal/"
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !strings.HasPrefix(path, prefix) {
				continue
			}
			depRel := strings.TrimPrefix(path, p.Module+"/")
			depRank, ok := layerRank[depRel]
			if !ok {
				out = append(out, Finding{
					Pos:  p.Fset.Position(imp.Pos()),
					Code: "LEA0002",
					Msg:  fmt.Sprintf("import of unmapped internal package %s; assign it a rank in the layer map", depRel),
				})
				continue
			}
			if mapped && depRank >= rank {
				out = append(out, Finding{
					Pos:  p.Fset.Position(imp.Pos()),
					Code: "LEA0001",
					Msg: fmt.Sprintf("layering violation: %s (rank %d) imports %s (rank %d); imports must go strictly downward",
						p.Rel, rank, depRel, depRank),
				})
			}
		}
	}
	return out
}

// LayerRank exposes the configured rank of an internal package (by
// module-relative path) for tests and tooling.
func LayerRank(rel string) (int, bool) {
	r, ok := layerRank[rel]
	return r, ok
}
