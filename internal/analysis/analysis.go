// Package analysis is a from-scratch, stdlib-only Go linter for this
// repository: pluggable syntactic passes over go/ast parse trees that enforce
// the repo's architectural and hygiene invariants. It is level 1 of the
// two-level static-analysis layer (level 2 is internal/check, which validates
// runtime artifacts rather than source text; the compile-time escape gate in
// internal/analysis/escape sits beside both, driven by real compiler output).
//
// The registered passes and their finding codes:
//
//	LEA0001/LEA0002  layering    — internal packages import strictly downward
//	LEA0101/LEA0102  determinism — no global math/rand, no stray wall clock
//	LEA0201          panics      — exported entry points return errors
//	LEA0301/LEA0302  docs        — exported API and packages carry doc comments
//	LEA0401–LEA0404  locks       — defer-unlock pairing, no blocking channel
//	                               ops or nested acquisitions under a lock
//	LEA0410/LEA0411  goroutines  — every spawn tied to a WaitGroup, done
//	                               channel or send; no spawns under a lock
//
// The suppression scanner itself emits LEA0010–LEA0012 for broken directives,
// and internal/analysis/escape emits LEA0501–LEA0503 for noalloc-zone
// violations; see KnownCodes for the full table.
//
// A finding can be silenced at a specific site with a directive of the form
//
//	//lealint:ignore LEA0201 reason for the exception
//	//lealint:ignore LEA0101(seed is pinned) LEA0102(bench clock) ...
//	//lealint:ignore LEA0101 LEA0102 shared reason for both
//
// on the offending line or the line directly above it. Every named code must
// exist (a typo'd code is itself a finding, LEA0010) and every suppression
// must carry a reason, either per-code in parentheses or shared trailing text
// (LEA0012). Test files are never linted: determinism and panic discipline
// are production-code properties.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	// Pos locates the finding; Filename is relative to the module root.
	Pos token.Position
	// Code is the stable LEA#### identifier of the rule.
	Code string
	// Msg describes the violation.
	Msg string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg)
}

// Package is one parsed package as the passes see it.
type Package struct {
	// Name is the package clause name (e.g. "flow", "main").
	Name string
	// Rel is the module-relative directory, e.g. "internal/flow" ("." for the
	// module root package).
	Rel string
	// Module is the module path from go.mod, e.g. "repro".
	Module string
	// Fset resolves token positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
}

// Internal reports whether the package lives under internal/.
func (p *Package) Internal() bool {
	return p.Rel == "internal" || strings.HasPrefix(p.Rel, "internal/")
}

// Pass is one lint rule set run over a package. Passes are registered with
// MustRegister; each owns a disjoint set of finding codes.
type Pass interface {
	// Name is the pass's short selection name (lealint -passes).
	Name() string
	// Doc is a one-line description shown by lealint -list.
	Doc() string
	// Codes lists every finding code the pass can emit.
	Codes() []Code
	// Run reports the pass's findings for one package.
	Run(p *Package) []Finding
}

// Run loads the packages matched by patterns (relative to the module rooted
// at dir) and applies every registered pass, returning the surviving findings
// sorted by position. Suppressed findings (lealint:ignore directives) are
// filtered out; broken directives surface as LEA001x findings of their own.
func Run(dir string, patterns []string) ([]Finding, error) {
	return RunPasses(dir, patterns, Passes())
}

// RunPasses is Run restricted to an explicit pass selection (see
// SelectPasses). Directive scanning and validation always happen, regardless
// of the selection — a broken suppression is a finding even when the pass it
// targets is not running.
func RunPasses(dir string, patterns []string, passes []Pass) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		sup, directiveFindings := collectDirectives(pkg)
		out = append(out, directiveFindings...)
		for _, pass := range passes {
			for _, f := range pass.Run(pkg) {
				if !sup.matches(f) {
					out = append(out, f)
				}
			}
		}
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by file, line, column, then code — the
// reporting order shared by every finding producer (passes and the escape
// gate alike).
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
}

// exportedFuncName reports whether a top-level function name is part of the
// package API surface.
func exportedFuncName(fd *ast.FuncDecl) bool {
	return fd.Name != nil && fd.Name.IsExported()
}

// importAlias returns the file-local name binding for an import path, or ""
// when the file does not import it (or imports it blank/dot).
func importAlias(file *ast.File, path, defaultName string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name == nil {
			return defaultName
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}
