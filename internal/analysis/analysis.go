// Package analysis is a from-scratch, stdlib-only Go linter for this
// repository: pluggable syntactic passes over go/ast parse trees that enforce
// the repo's architectural and hygiene invariants. It is level 1 of the
// two-level static-analysis layer (level 2 is internal/check, which validates
// runtime artifacts rather than source text).
//
// The passes and their finding codes:
//
//	LEA0001/LEA0002  layering    — internal packages import strictly downward
//	LEA0101/LEA0102  determinism — no global math/rand, no stray wall clock
//	LEA0201          panics      — exported entry points return errors
//	LEA0301/LEA0302  docs        — exported API and packages carry doc comments
//
// A finding can be silenced at a specific site with a comment of the form
//
//	//lealint:ignore LEA0201 reason for the exception
//
// on the offending line or the line directly above it. Test files are never
// linted: determinism and panic discipline are production-code properties.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	// Pos locates the finding; Filename is relative to the module root.
	Pos token.Position
	// Code is the stable LEA#### identifier of the rule.
	Code string
	// Msg describes the violation.
	Msg string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg)
}

// Package is one parsed package as the passes see it.
type Package struct {
	// Name is the package clause name (e.g. "flow", "main").
	Name string
	// Rel is the module-relative directory, e.g. "internal/flow" ("." for the
	// module root package).
	Rel string
	// Module is the module path from go.mod, e.g. "repro".
	Module string
	// Fset resolves token positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
}

// Internal reports whether the package lives under internal/.
func (p *Package) Internal() bool {
	return p.Rel == "internal" || strings.HasPrefix(p.Rel, "internal/")
}

// Pass is one lint rule set run over a package.
type Pass interface {
	// Name is the pass's short selection name.
	Name() string
	// Doc is a one-line description shown by lealint -list.
	Doc() string
	// Run reports the pass's findings for one package.
	Run(p *Package) []Finding
}

// Passes returns the default pass set, in reporting order.
func Passes() []Pass {
	return []Pass{layeringPass{}, determinismPass{}, panicPass{}, docPass{}}
}

// Run loads the packages matched by patterns (relative to the module rooted
// at dir) and applies every default pass, returning the surviving findings
// sorted by position. Suppressed findings (lealint:ignore comments) are
// filtered out.
func Run(dir string, patterns []string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, pass := range Passes() {
			for _, f := range pass.Run(pkg) {
				if !sup.matches(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
	return out, nil
}

// suppressions indexes lealint:ignore comments by file, line and code.
type suppressions map[string]map[int]map[string]bool

// matches reports whether the finding is silenced by an ignore comment on its
// line or the line directly above.
func (s suppressions) matches(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if lines[line][f.Code] {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment of the package for
// "lealint:ignore CODE..." directives.
func collectSuppressions(pkg *Package) suppressions {
	sup := make(suppressions)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lealint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				codes := byLine[pos.Line]
				if codes == nil {
					codes = make(map[string]bool)
					byLine[pos.Line] = codes
				}
				for _, tok := range strings.Fields(strings.TrimPrefix(text, "lealint:ignore")) {
					if strings.HasPrefix(tok, "LEA") {
						codes[tok] = true
					} else {
						break // remainder is the human reason
					}
				}
			}
		}
	}
	return sup
}

// exportedFuncName reports whether a top-level function name is part of the
// package API surface.
func exportedFuncName(fd *ast.FuncDecl) bool {
	return fd.Name != nil && fd.Name.IsExported()
}

// importAlias returns the file-local name binding for an import path, or ""
// when the file does not import it (or imports it blank/dot).
func importAlias(file *ast.File, path, defaultName string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name == nil {
			return defaultName
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}
