package analysis

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/violations.golden from current linter output")

// TestRepoIsClean is the self-hosting acceptance check: the default pass set
// over the whole module must produce zero findings. Regressions here mean a
// new layering/determinism/panic/doc violation slipped into production code.
func TestRepoIsClean(t *testing.T) {
	findings, err := Run("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestViolationsGolden pins the linter's output on the seeded-violation
// corpus: every pass must fire with the exact position, code and message
// recorded in testdata/violations.golden. The corpus also carries one
// suppressed finding (lealint:ignore), which must NOT appear. Regenerate
// with `go test ./internal/analysis -run Golden -update`.
func TestViolationsGolden(t *testing.T) {
	findings, err := Run(".", []string{"internal/analysis/testdata/violations"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	got := sb.String()
	if *update {
		if err := os.WriteFile("testdata/violations.golden", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile("testdata/violations.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if len(findings) == 0 {
		t.Fatal("seeded corpus produced no findings")
	}
	// The corpus suppresses exactly one LEA0102; only the unsuppressed read
	// may surface.
	n := 0
	for _, f := range findings {
		if f.Code == "LEA0102" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 LEA0102 (the second is lealint:ignore-suppressed), got %d", n)
	}
}

// TestRecursiveWalkSkipsTestdata: the corpus must be invisible to "./..."
// patterns or the repo could never be lint-clean.
func TestRecursiveWalkSkipsTestdata(t *testing.T) {
	findings, err := Run(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.Contains(f.Pos.Filename, "testdata") {
			t.Errorf("recursive walk reached testdata: %s", f)
		}
	}
}

// TestLayerRank spot-checks the exported rank accessor against the
// architecture: flow below core, core below pipeline.
func TestLayerRank(t *testing.T) {
	flowR, ok := LayerRank("internal/flow")
	if !ok {
		t.Fatal("internal/flow unmapped")
	}
	coreR, ok := LayerRank("internal/core")
	if !ok {
		t.Fatal("internal/core unmapped")
	}
	pipeR, ok := LayerRank("internal/pipeline")
	if !ok {
		t.Fatal("internal/pipeline unmapped")
	}
	if !(flowR < coreR && coreR < pipeR) {
		t.Errorf("rank order broken: flow=%d core=%d pipeline=%d", flowR, coreR, pipeR)
	}
	if _, ok := LayerRank("internal/no-such-package"); ok {
		t.Error("unknown package reported as mapped")
	}
}

// TestServingStackRanks pins the serving subsystem's place in the layer DAG:
// the pure engine sits above core (it drives Prepare/Allocate) and strictly
// below shard and transport; shard and transport share a rank, so the lint
// forbids the transport importing the shard router and vice versa — both may
// only compose downward through the engine. The serving commands sit above
// all three, and the retired monolithic internal/serve must stay unmapped.
func TestServingStackRanks(t *testing.T) {
	engineRank, ok := LayerRank("internal/serve/engine")
	if !ok {
		t.Fatal("internal/serve/engine missing from the layer map")
	}
	coreRank, ok := LayerRank("internal/core")
	if !ok {
		t.Fatal("internal/core missing from the layer map")
	}
	if engineRank <= coreRank {
		t.Errorf("internal/serve/engine rank %d must be above internal/core rank %d", engineRank, coreRank)
	}
	shardRank, ok := LayerRank("internal/serve/shard")
	if !ok {
		t.Fatal("internal/serve/shard missing from the layer map")
	}
	transportRank, ok := LayerRank("internal/serve/transport")
	if !ok {
		t.Fatal("internal/serve/transport missing from the layer map")
	}
	if shardRank <= engineRank || transportRank <= engineRank {
		t.Errorf("shard (%d) and transport (%d) must rank above engine (%d)", shardRank, transportRank, engineRank)
	}
	if shardRank != transportRank {
		t.Errorf("shard rank %d and transport rank %d must be equal so neither can import the other", shardRank, transportRank)
	}
	if _, ok := LayerRank("internal/serve"); ok {
		t.Error("retired monolithic internal/serve still mapped")
	}
	for _, cmd := range []string{"cmd/leaserved", "cmd/leaload"} {
		r, ok := LayerRank(cmd)
		if !ok {
			t.Errorf("%s missing from the layer map", cmd)
			continue
		}
		if r <= shardRank || r <= transportRank {
			t.Errorf("%s rank %d must be above the serving stack (shard %d, transport %d)", cmd, r, shardRank, transportRank)
		}
	}

	// The load-generation substrate reuses the engine's histograms, so it
	// must rank above the engine — and below the commands, like the rest of
	// the serving stack. The rank-4 workload corpus must sit strictly below
	// it: programs never depend on how they are offered.
	genRank, ok := LayerRank("internal/workload/generator")
	if !ok {
		t.Fatal("internal/workload/generator missing from the layer map")
	}
	if genRank <= engineRank {
		t.Errorf("internal/workload/generator rank %d must be above internal/serve/engine rank %d", genRank, engineRank)
	}
	workloadRank, ok := LayerRank("internal/workload")
	if !ok {
		t.Fatal("internal/workload missing from the layer map")
	}
	if workloadRank >= genRank {
		t.Errorf("internal/workload rank %d must be below internal/workload/generator rank %d", workloadRank, genRank)
	}
	if loadRank, _ := LayerRank("cmd/leaload"); loadRank <= genRank {
		t.Errorf("cmd/leaload rank %d must be above internal/workload/generator rank %d", loadRank, genRank)
	}
}

// TestParseIgnoreDirective pins the suppression grammar: a code list with
// optional per-code parenthesised reasons, terminated by the first non-code
// token, which becomes the shared trailing reason.
func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		in     string
		codes  []suppressedCode
		shared string
	}{
		{" LEA0102 corpus reason", []suppressedCode{{code: "LEA0102"}}, "corpus reason"},
		{" LEA0101(a) LEA0102(b)", []suppressedCode{{code: "LEA0101", reason: "a"}, {code: "LEA0102", reason: "b"}}, ""},
		{" LEA0101(a) LEA0102 shared tail", []suppressedCode{{code: "LEA0101", reason: "a"}, {code: "LEA0102"}}, "shared tail"},
		{" LEA0201", []suppressedCode{{code: "LEA0201"}}, ""},
		{"", nil, ""},
		{" just words, no codes", nil, "just words, no codes"},
		{" LEA01 truncated", nil, "LEA01 truncated"},
		{" LEA0101x not a boundary", nil, "LEA0101x not a boundary"},
		{" LEA0101(unterminated reason", []suppressedCode{{code: "LEA0101", reason: "unterminated reason"}}, ""},
	}
	for _, c := range cases {
		codes, shared := parseIgnoreDirective(c.in)
		if shared != c.shared || len(codes) != len(c.codes) {
			t.Errorf("parseIgnoreDirective(%q) = (%v, %q), want (%v, %q)", c.in, codes, shared, c.codes, c.shared)
			continue
		}
		for i := range codes {
			if codes[i] != c.codes[i] {
				t.Errorf("parseIgnoreDirective(%q) code %d = %+v, want %+v", c.in, i, codes[i], c.codes[i])
			}
		}
	}
}

// TestSelectPasses: the empty selection is every registered pass, a named
// subset resolves in registry order, and unknown names error with the valid
// list so the CLI message stays actionable.
func TestSelectPasses(t *testing.T) {
	all, err := SelectPasses(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Passes()) {
		t.Errorf("empty selection returned %d passes, want all %d", len(all), len(Passes()))
	}
	subset, err := SelectPasses([]string{"locks", "goroutines"})
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name() != "locks" || subset[1].Name() != "goroutines" {
		t.Errorf("subset selection wrong: %v", subset)
	}
	if _, err := SelectPasses([]string{"nosuchpass"}); err == nil {
		t.Error("unknown pass name did not error")
	} else if !strings.Contains(err.Error(), "locks") {
		t.Errorf("error does not list the valid passes: %v", err)
	}
}

// TestKnownCodes: the registry's code table must cover every family the
// passes and the directive validator emit, including the directive and
// escape codes that have no AST pass behind them.
func TestKnownCodes(t *testing.T) {
	known := KnownCodes()
	for _, id := range []string{
		"LEA0001", "LEA0002", "LEA0010", "LEA0011", "LEA0012",
		"LEA0101", "LEA0102", "LEA0201", "LEA0301", "LEA0302",
		"LEA0401", "LEA0402", "LEA0403", "LEA0404", "LEA0410", "LEA0411",
		"LEA0501", "LEA0502", "LEA0503",
	} {
		if _, ok := known[id]; !ok {
			t.Errorf("KnownCodes missing %s", id)
		}
	}
	for _, id := range []string{"LEA0010", "LEA0011", "LEA0012", "LEA0501", "LEA0502", "LEA0503"} {
		if _, no := nonIgnorable[id]; !no {
			t.Errorf("%s should be non-ignorable", id)
		}
	}
}
