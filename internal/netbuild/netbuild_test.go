package netbuild

import (
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/lifetime"
)

func fig1Set() *lifetime.Set {
	return &lifetime.Set{
		Steps: 7,
		Lifetimes: []lifetime.Lifetime{
			{Var: "a", Write: 1, Reads: []int{3}},
			{Var: "b", Write: 1, Reads: []int{3}},
			{Var: "c", Write: 2, Reads: []int{8}, External: true},
			{Var: "d", Write: 3, Reads: []int{8}, External: true},
			{Var: "e", Write: 5, Reads: []int{6}},
		},
	}
}

func staticCO() CostOptions {
	return CostOptions{Style: energy.Static, Model: energy.OnChip256x16()}
}

func buildFig1(t *testing.T, style GraphStyle) *Build {
	t.Helper()
	set := fig1Set()
	grouped, err := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildNetwork(set, grouped, style, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// transferNames maps the build's transfer arcs to "from->to" strings.
func transferNames(b *Build) map[string]ArcKind {
	m := make(map[string]ArcKind)
	for _, tr := range b.Transfers {
		from, to := "s", "t"
		if tr.FromSeg >= 0 {
			from = b.Segments[tr.FromSeg].Var
		}
		if tr.ToSeg >= 0 {
			to = b.Segments[tr.ToSeg].Var
		}
		m[from+"->"+to] = tr.Kind
	}
	return m
}

func TestFigure1DensityGraphStructure(t *testing.T) {
	b := buildFig1(t, DensityRegions)
	arcs := transferNames(b)
	// The paper's Figure 1b: s connects to a, b, c; reads of a and b connect
	// to writes of d and e; c, d, e drain to t.
	for _, want := range []string{"s->a", "s->b", "s->c", "a->d", "a->e", "b->d", "b->e", "c->t", "d->t", "e->t", "s->t"} {
		if _, ok := arcs[want]; !ok {
			t.Errorf("missing arc %s (have %v)", want, arcs)
		}
	}
	// And no arc that skips the density structure.
	for _, bad := range []string{"s->d", "s->e", "a->t", "b->t", "a->c", "b->c"} {
		if _, ok := arcs[bad]; ok {
			t.Errorf("spurious arc %s", bad)
		}
	}
}

func TestFigure1AllCompatibleStructure(t *testing.T) {
	b := buildFig1(t, AllCompatible)
	arcs := transferNames(b)
	// All-compatible connects s and t to everything and all compatible
	// pairs: a ends step 3, d written step 3 → a->d exists; a->c does not
	// (c written step 2 < a's read).
	for _, want := range []string{"s->d", "s->e", "a->t", "a->d", "a->e", "b->d", "b->e"} {
		if _, ok := arcs[want]; !ok {
			t.Errorf("missing arc %s", want)
		}
	}
	if _, ok := arcs["a->c"]; ok {
		t.Error("a->c should not exist (c written before a is read)")
	}
	if _, ok := arcs["e->d"]; ok {
		t.Error("e->d should not exist (overlap)")
	}
}

func TestForcedSegmentsGetLowerBounds(t *testing.T) {
	set := fig1Set()
	grouped, err := set.Split(lifetime.MemoryAccess{Period: 2, Offset: 1}, lifetime.SplitMinimal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildNetwork(set, grouped, DensityRegions, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	forced := 0
	for i := range b.Segments {
		_, _, lower, capacity, _ := b.Net.Arc(b.SegArc[i])
		wantLower := int64(0)
		if b.Segments[i].Forced {
			wantLower = 1
			forced++
		}
		if lower != wantLower || capacity != 1 {
			t.Errorf("segment %s: bounds [%d,%d], want [%d,1]", b.Segments[i].String(), lower, capacity, wantLower)
		}
	}
	if forced != 2 { // c's first segment and e
		t.Errorf("forced segments %d, want 2", forced)
	}
}

func TestChainArcForSplitVariable(t *testing.T) {
	set := fig1Set()
	grouped, _ := set.Split(lifetime.MemoryAccess{Period: 2, Offset: 1}, lifetime.SplitMinimal)
	b, err := BuildNetwork(set, grouped, DensityRegions, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	chains := 0
	for _, tr := range b.Transfers {
		if tr.Kind == KindEq9 {
			chains++
			if b.Segments[tr.FromSeg].Var != b.Segments[tr.ToSeg].Var {
				t.Error("eq9 arc between different variables")
			}
			if b.Segments[tr.ToSeg].Index != b.Segments[tr.FromSeg].Index+1 {
				t.Error("eq9 arc not between consecutive segments")
			}
		}
	}
	if chains != 1 { // only c is split
		t.Errorf("chain arcs %d, want 1", chains)
	}
}

// Hand-computed arc costs against the paper's equations, static style.
func TestArcCostEquationsStatic(t *testing.T) {
	m := energy.OnChip256x16()
	co := CostOptions{Style: energy.Static, Model: m}
	// Two synthetic segments of multi-segment variables.
	segNonLast := &lifetime.Segment{Var: "v1", Index: 0, NumSegs: 2, Start: 1, End: 3,
		StartKind: lifetime.BoundWrite, EndKind: lifetime.BoundRead}
	segLast := &lifetime.Segment{Var: "v1", Index: 1, NumSegs: 2, Start: 3, End: 5,
		StartKind: lifetime.BoundRead, EndKind: lifetime.BoundRead}
	segFirst := &lifetime.Segment{Var: "v2", Index: 0, NumSegs: 2, Start: 6, End: 7,
		StartKind: lifetime.BoundWrite, EndKind: lifetime.BoundRead}
	segMid := &lifetime.Segment{Var: "v2", Index: 1, NumSegs: 2, Start: 7, End: 9,
		StartKind: lifetime.BoundRead, EndKind: lifetime.BoundRead}

	Emr, Emw := m.EMemRead(), m.EMemWrite()
	Err, Erw := m.ERegRead(), m.ERegWrite()

	cases := []struct {
		name string
		got  float64
		want float64
	}{
		// eq. (10)/(4): rlast(v1)->w1(v2)
		{"eq10", CrossCost(co, segLast, segFirst), -Emw - Emr + Err + Erw},
		// eq. (8): rlast(v1)->wj(v2)
		{"eq8", CrossCost(co, segLast, segMid), -Emr + Err + Erw},
		// eq. (6): ri(v1)->w1(v2), i<last
		{"eq6", CrossCost(co, segNonLast, segFirst), -Emr - Emw + Emw + Err + Erw},
		// eq. (7) consistent: ri(v1)->wj(v2)
		{"eq7-consistent", CrossCost(co, segNonLast, segMid), -Emr + Emw + Err + Erw},
		// eq. (9): chain
		{"eq9", ChainCost(co, segNonLast), -Emr + Err},
		// source and sink
		{"source", SourceCost(co, segFirst), -Emw + Erw},
		{"sink", SinkCost(co, segLast), -Emr + Err},
	}
	for _, tc := range cases {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s: got %g, want %g", tc.name, tc.got, tc.want)
		}
	}

	// Literal eq. (7) omits the −E^m_r(v1).
	coLit := co
	coLit.PaperEq7 = true
	if got, want := CrossCost(coLit, segNonLast, segMid), Emw+Err+Erw; math.Abs(got-want) > 1e-9 {
		t.Errorf("eq7-literal: got %g, want %g", got, want)
	}
	// The literal switch must not affect the other equations.
	if got := CrossCost(coLit, segLast, segFirst); math.Abs(got-(-Emw-Emr+Err+Erw)) > 1e-9 {
		t.Errorf("eq10 changed under PaperEq7: %g", got)
	}
}

// Activity style: register term is H·Crw·V² on enter, nothing on exit.
func TestArcCostEquationsActivity(t *testing.T) {
	m := energy.OnChip256x16()
	h := energy.PairHamming(map[[2]string]float64{{"v1", "v2"}: 0.25}, 0.5)
	co := CostOptions{Style: energy.Activity, Model: m, H: h}
	last := &lifetime.Segment{Var: "v1", Index: 1, NumSegs: 2, Start: 3, End: 5,
		StartKind: lifetime.BoundRead, EndKind: lifetime.BoundRead}
	first := &lifetime.Segment{Var: "v2", Index: 0, NumSegs: 1, Start: 6, End: 7,
		StartKind: lifetime.BoundWrite, EndKind: lifetime.BoundRead}
	Emr, Emw := m.EMemRead(), m.EMemWrite()
	want := -Emw - Emr + 0.25*m.CrwV2
	if got := CrossCost(co, last, first); math.Abs(got-want) > 1e-9 {
		t.Errorf("activity eq5: got %g, want %g", got, want)
	}
	// Source uses the initial-state Hamming (0.5 by convention).
	wantSrc := -Emw + 0.5*m.CrwV2
	if got := SourceCost(co, first); math.Abs(got-wantSrc) > 1e-9 {
		t.Errorf("activity source: got %g, want %g", got, wantSrc)
	}
	// Sink costs no register energy under the activity model.
	if got := SinkCost(co, last); math.Abs(got-(-Emr)) > 1e-9 {
		t.Errorf("activity sink: got %g, want %g", got, -Emr)
	}
}

func TestInputEnterCostsLoad(t *testing.T) {
	m := energy.OnChip256x16()
	co := CostOptions{Style: energy.Static, Model: m}
	in := &lifetime.Segment{Var: "x", Index: 0, NumSegs: 1, Start: 0, End: 3,
		StartKind: lifetime.BoundInput, EndKind: lifetime.BoundRead}
	want := m.EMemRead() + m.ERegWrite()
	if got := EnterCost(co, "", in); math.Abs(got-want) > 1e-9 {
		t.Errorf("input enter: got %g, want %g (load + register write)", got, want)
	}
}

func TestVoluntaryCutCosts(t *testing.T) {
	m := energy.OnChip256x16()
	co := CostOptions{Style: energy.Static, Model: m}
	// Voluntary (non-staged) cut: no baseline read at the boundary.
	seg := &lifetime.Segment{Var: "v", Index: 0, NumSegs: 2, Start: 1, End: 4,
		StartKind: lifetime.BoundWrite, EndKind: lifetime.BoundCut, EndStaged: false}
	after := &lifetime.Segment{Var: "v", Index: 1, NumSegs: 2, Start: 4, End: 8,
		StartKind: lifetime.BoundCut, StartStaged: false, EndKind: lifetime.BoundRead}
	// Chain across a voluntary cut: nothing happens.
	if got := ChainCost(co, seg); math.Abs(got) > 1e-9 {
		t.Errorf("voluntary chain cost %g, want 0", got)
	}
	// Exit at a voluntary cut: write-back only (plus no register read).
	if got := ExitCost(co, seg); math.Abs(got-m.EMemWrite()) > 1e-9 {
		t.Errorf("voluntary exit cost %g, want %g", got, m.EMemWrite())
	}
	// Enter after a voluntary cut: explicit load.
	want := m.EMemRead() + m.ERegWrite()
	if got := EnterCost(co, "u", after); math.Abs(got-want) > 1e-9 {
		t.Errorf("voluntary enter cost %g, want %g", got, want)
	}
	// Staged cut (restricted access): the staged read covers the load.
	staged := *seg
	staged.EndStaged = true
	if got := ChainCost(co, &staged); math.Abs(got-(-m.EMemRead())) > 1e-9 {
		t.Errorf("staged chain cost %g, want %g (eq. 9)", got, -m.EMemRead())
	}
}

func TestBaselineEnergy(t *testing.T) {
	m := energy.OnChip256x16()
	co := CostOptions{Style: energy.Static, Model: m}
	set := &lifetime.Set{Steps: 6, Lifetimes: []lifetime.Lifetime{
		{Var: "in", Write: 0, Reads: []int{2}, Input: true},
		{Var: "v", Write: 1, Reads: []int{3, 5}},
	}}
	grouped, _ := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	got := BaselineEnergy(co, grouped)
	// in: one read (no write: producer task paid it); v: one write + two
	// reads.
	want := m.EMemRead() + m.EMemWrite() + 2*m.EMemRead()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("baseline %g, want %g", got, want)
	}
}

func TestBuildValidation(t *testing.T) {
	set := fig1Set()
	grouped, _ := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	if _, err := BuildNetwork(set, grouped, DensityRegions, CostOptions{Style: energy.Activity, Model: energy.OnChip256x16()}); err == nil {
		t.Error("activity style without Hamming oracle accepted")
	}
	bad := staticCO()
	bad.Model.MemRead = -3
	if _, err := BuildNetwork(set, grouped, DensityRegions, bad); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := BuildNetwork(set, grouped, GraphStyle(99), staticCO()); err == nil {
		t.Error("unknown graph style accepted")
	}
}

func TestWriteDot(t *testing.T) {
	b := buildFig1(t, DensityRegions)
	var sb strings.Builder
	if err := b.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", `"s"`, `"t"`, "w1(a)@1", "r1(a)@3", "dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestKindAndStyleStrings(t *testing.T) {
	if KindEq9.String() != "eq9" || KindBypass.String() != "bypass" {
		t.Error("kind names wrong")
	}
	if DensityRegions.String() != "density-regions" || AllCompatible.String() != "all-compatible" {
		t.Error("style names wrong")
	}
}

// TestDensityArcsSubsetOfAllCompatible: the paper's construction is a strict
// restriction of the all-compatible graph — every density arc must appear in
// the all-compatible arc set.
func TestDensityArcsSubsetOfAllCompatible(t *testing.T) {
	set := fig1Set()
	grouped, _ := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	dens, err := BuildNetwork(set, grouped, DensityRegions, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	grouped2, _ := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	all, err := BuildNetwork(set, grouped2, AllCompatible, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	allSet := transferNames(all)
	for name := range transferNames(dens) {
		if _, ok := allSet[name]; !ok {
			t.Errorf("density arc %s missing from the all-compatible graph", name)
		}
	}
	if len(transferNames(dens)) >= len(allSet) {
		t.Errorf("density graph (%d arcs) not smaller than all-compatible (%d)",
			len(transferNames(dens)), len(allSet))
	}
}

// TestBarredSegmentGetsZeroCapacity checks the ForceMemory plumbing.
func TestBarredSegmentGetsZeroCapacity(t *testing.T) {
	set := fig1Set()
	grouped, _ := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	grouped[0][0].Barred = true
	b, err := BuildNetwork(set, grouped, DensityRegions, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, capacity, _ := b.Net.Arc(b.SegArc[0])
	if capacity != 0 {
		t.Fatalf("barred segment capacity %d, want 0", capacity)
	}
	grouped[0][0].Forced = true
	if _, err := BuildNetwork(set, grouped, DensityRegions, staticCO()); err == nil {
		t.Fatal("forced+barred accepted")
	}
}

// TestDensitySubsetProperty extends the subset check to random sets: every
// density-graph transfer arc appears in the all-compatible graph, and the
// density graph is never larger.
func TestDensitySubsetProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		set := randomSubsetSet(seed)
		g1, err := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
		if err != nil {
			t.Fatal(err)
		}
		dens, err := BuildNetwork(set, g1, DensityRegions, staticCO())
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
		all, err := BuildNetwork(set, g2, AllCompatible, staticCO())
		if err != nil {
			t.Fatal(err)
		}
		allArcs := make(map[[2]int]bool)
		for _, tr := range all.Transfers {
			allArcs[[2]int{tr.FromSeg, tr.ToSeg}] = true
		}
		for _, tr := range dens.Transfers {
			if !allArcs[[2]int{tr.FromSeg, tr.ToSeg}] {
				t.Fatalf("seed %d: density arc %d->%d missing from all-compatible", seed, tr.FromSeg, tr.ToSeg)
			}
		}
		if len(dens.Transfers) > len(all.Transfers) {
			t.Fatalf("seed %d: density graph larger (%d vs %d)", seed, len(dens.Transfers), len(all.Transfers))
		}
	}
}

func randomSubsetSet(seed int64) *lifetime.Set {
	// Small deterministic pseudo-random sets without importing math/rand:
	// a simple LCG keeps this self-contained.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	steps := 6 + next(6)
	set := &lifetime.Set{Steps: steps}
	nVars := 3 + next(6)
	for i := 0; i < nVars; i++ {
		w := 1 + next(steps-1)
		r := w + 1 + next(steps-w)
		set.Lifetimes = append(set.Lifetimes, lifetime.Lifetime{
			Var: string(rune('a' + i)), Write: w, Reads: []int{r},
		})
	}
	return set
}

// TestNetworkSizedExactly certifies the precomputed node/arc counts: the
// constructed network's arc storage is sized once and filled exactly, with
// no regrowth, across styles, splits and random instances.
func TestNetworkSizedExactly(t *testing.T) {
	check := func(name string, set *lifetime.Set, mem lifetime.MemoryAccess, style GraphStyle) {
		t.Helper()
		grouped, err := set.Split(mem, lifetime.SplitMinimal)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := BuildNetwork(set, grouped, style, staticCO())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := b.Net.ArcCapacity(), b.Net.M(); got != want {
			t.Errorf("%s: arc capacity %d != arc count %d (regrown or overestimated)", name, got, want)
		}
		if got, want := cap(b.Transfers), len(b.Transfers); got != want {
			t.Errorf("%s: transfer capacity %d != count %d", name, got, want)
		}
	}
	for _, style := range []GraphStyle{DensityRegions, AllCompatible} {
		check("fig1/"+style.String(), fig1Set(), lifetime.FullSpeed, style)
		// Restricted memory access forces split lifetimes, exercising the
		// chain-arc count.
		check("fig1c/"+style.String(), fig1Set(), lifetime.MemoryAccess{Period: 2, Offset: 1}, style)
		for seed := int64(0); seed < 10; seed++ {
			check("random/"+style.String(), randomSubsetSet(seed), lifetime.FullSpeed, style)
		}
	}
}
