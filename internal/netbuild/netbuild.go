// Package netbuild maps the lifetime model of a scheduled basic block into
// the paper's minimum-cost network flow problem (§5.1, §5.2).
//
// Construction summary: every lifetime segment wi(v)→ri(v) becomes a
// capacity-1 arc between a write node and a read node. Regions of maximum
// lifetime density anchor the graph: between adjacent regions a complete
// bipartite set of transfer arcs connects segments ending in the gap to
// segments beginning in it, which guarantees a minimum number of memory
// locations (§7). Node s feeds segments starting before the first region,
// and segments ending after the last region drain into node t. Fixed flow
// R (the register count) is shipped from s to t; a zero-cost bypass arc
// lets surplus registers idle, so a register is used exactly when it saves
// energy.
package netbuild

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/flow"
	"repro/internal/lifetime"
)

// GraphStyle selects how transfer arcs are generated.
type GraphStyle int

const (
	// DensityRegions is the paper's construction: bipartite connections only
	// between adjacent regions of maximum lifetime density (minimum memory
	// locations guaranteed).
	DensityRegions GraphStyle = iota
	// AllCompatible is the Chang–Pedram [8] style graph used by the paper's
	// Figure 4a/b comparison: every pair of non-overlapping lifetimes is
	// connected, and s/t connect to every lifetime. No minimum-location
	// guarantee.
	AllCompatible
)

// String names the graph style.
func (s GraphStyle) String() string {
	if s == DensityRegions {
		return "density-regions"
	}
	return "all-compatible"
}

// ArcKind classifies a transfer arc by the paper equation giving its cost.
type ArcKind int

const (
	// KindSegment is a lifetime-segment arc wi(v)→ri(v) (eq. 3, cost 0).
	KindSegment ArcKind = iota
	// KindEq4 is rlast(v1)→w1(v2) between distinct variables (eq. 4/5/10).
	KindEq4
	// KindEq6 is ri(v1)→w1(v2), i < last (eq. 6).
	KindEq6
	// KindEq7 is ri(v1)→wj(v2), i < last, j > 1 (eq. 7).
	KindEq7
	// KindEq8 is rlast(v1)→wj(v2), j > 1 (eq. 8).
	KindEq8
	// KindEq9 is the same-variable chain arc ri(v)→wi+1(v) (eq. 9).
	KindEq9
	// KindSource is s→wj(v).
	KindSource
	// KindSink is ri(v)→t.
	KindSink
	// KindBypass is the zero-cost s→t surplus-register arc.
	KindBypass
)

var kindNames = [...]string{"segment", "eq4", "eq6", "eq7", "eq8", "eq9", "source", "sink", "bypass"}

// String names the arc kind.
func (k ArcKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// CostOptions configures the energy cost model of the network arcs.
type CostOptions struct {
	Style energy.Style
	Model energy.Model
	// H supplies switching activity for the Activity style; ignored (may be
	// nil) for Static.
	H energy.Hamming
	// PaperEq7 reproduces eq. (7) literally, which omits the −E^m_r(v1)
	// term present in the otherwise-identical eq. (6). The default (false)
	// uses the accounting-consistent cost (see DESIGN.md); the literal form
	// is kept for fidelity ablations.
	PaperEq7 bool
}

// Transfer records one non-segment arc of the network with its metadata.
type Transfer struct {
	Arc     flow.ArcID
	Kind    ArcKind
	FromSeg int // flat segment index, -1 for s
	ToSeg   int // flat segment index, -1 for t
	Energy  float64
}

// Build is the constructed network plus everything needed to decode a
// solution.
type Build struct {
	Net  *flow.Network
	S, T int
	// Segments is the flat segment list; SegArc[i] is segment i's arc and
	// WNode/RNode its write/read node.
	Segments []lifetime.Segment
	SegArc   []flow.ArcID
	WNode    []int
	RNode    []int
	// Transfers are all non-segment arcs.
	Transfers []Transfer
	Bypass    flow.ArcID
	// ConstantEnergy is the all-in-memory baseline Σv [E^m_w + nSegs·E^m_r]
	// removed from the flow objective (the paper's constant first term).
	ConstantEnergy float64
	// Regions are the maximum-density regions used by the construction.
	Regions []lifetime.Region
	Style   GraphStyle
	Cost    CostOptions
	Set     *lifetime.Set
}

// BuildNetwork constructs the flow network for the given lifetimes and
// pre-split segments.
func BuildNetwork(set *lifetime.Set, grouped [][]lifetime.Segment, style GraphStyle, co CostOptions) (*Build, error) {
	if co.Style == energy.Activity && co.H == nil {
		return nil, fmt.Errorf("netbuild: activity style requires a Hamming oracle")
	}
	if err := co.Model.Validate(); err != nil {
		return nil, err
	}
	segs := lifetime.SegmentsFlat(grouped)
	b := &Build{
		Segments: segs,
		Style:    style,
		Cost:     co,
		Set:      set,
		Regions:  set.MaxDensityRegions(),
	}
	// The construction's node and arc counts are fully determined by the
	// segments, regions and style; computing them up front sizes the network
	// (and the transfer list) exactly once, with no slice regrowth.
	transfers, err := countTransferArcs(segs, b.Regions, style)
	if err != nil {
		return nil, err
	}
	nw := flow.NewNetworkSized(2+2*len(segs), len(segs)+transfers)
	b.Net = nw
	b.Transfers = make([]Transfer, 0, transfers)
	b.S, b.T = 0, 1
	b.WNode = make([]int, len(segs))
	b.RNode = make([]int, len(segs))
	b.SegArc = make([]flow.ArcID, len(segs))
	for i := range segs {
		b.WNode[i] = 2 + 2*i
		b.RNode[i] = 3 + 2*i
	}

	// Segment arcs (eq. 3): cost 0, lower bound 1 when forced (§5.2),
	// capacity 0 when barred from the register file.
	for i := range segs {
		var lower, capacity int64 = 0, 1
		if segs[i].Forced {
			lower = 1
		}
		if segs[i].Barred {
			if segs[i].Forced {
				return nil, fmt.Errorf("netbuild: segment %s both forced and barred", segs[i].String())
			}
			capacity = 0
		}
		id, err := nw.AddArc(b.WNode[i], b.RNode[i], lower, capacity, 0)
		if err != nil {
			return nil, err
		}
		b.SegArc[i] = id
	}

	// Baseline constant: one memory write per non-input variable plus one
	// memory read per segment (the paper's rlast_v reads; segment
	// boundaries at restricted access times are staged reads — see
	// DESIGN.md).
	b.ConstantEnergy = BaselineEnergy(co, grouped)

	// Same-variable chain arcs (eq. 9). A variable's segments are contiguous
	// in flat order, so consecutive same-variable segments are exactly the
	// chain pairs; iterating the flat list keeps arc order deterministic
	// across builds (identical requests must yield identical networks for
	// the serving stack's byte-identity guarantees).
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].Var != segs[i+1].Var {
			continue
		}
		e := b.chainCost(&segs[i])
		if err := b.addTransfer(KindEq9, i, i+1, e); err != nil {
			return nil, err
		}
	}

	// Cross-variable transfer arcs plus s/t arcs, per graph style.
	switch style {
	case DensityRegions:
		if err := b.buildDensityArcs(); err != nil {
			return nil, err
		}
	case AllCompatible:
		if err := b.buildAllCompatibleArcs(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("netbuild: unknown graph style %d", style)
	}

	// Surplus registers idle via the zero-cost bypass.
	id, err := nw.AddArc(b.S, b.T, 0, flow.Unbounded, 0)
	if err != nil {
		return nil, err
	}
	b.Bypass = id
	b.Transfers = append(b.Transfers, Transfer{Arc: id, Kind: KindBypass, FromSeg: -1, ToSeg: -1})
	return b, nil
}

// addTransfer creates the network arc for a transfer between segments
// (or s/t when u or v is -1) and records it.
func (b *Build) addTransfer(kind ArcKind, u, v int, e float64) error {
	fromNode, toNode := b.S, b.T
	if u >= 0 {
		fromNode = b.RNode[u]
	}
	if v >= 0 {
		toNode = b.WNode[v]
	}
	id, err := b.Net.AddArc(fromNode, toNode, 0, 1, energy.Quantize(e))
	if err != nil {
		return err
	}
	b.Transfers = append(b.Transfers, Transfer{Arc: id, Kind: kind, FromSeg: u, ToSeg: v, Energy: e})
	return nil
}

// endGap counts the regions starting at or before point e: the index of the
// inter-region gap a segment ending at e drains into.
func endGap(regions []lifetime.Region, e int) int {
	g := 0
	for _, r := range regions {
		if r.Start <= e {
			g++
		}
	}
	return g
}

// startGap counts the regions ending strictly before point s: the gap a
// segment starting at s is born into.
func startGap(regions []lifetime.Region, s int) int {
	g := 0
	for _, r := range regions {
		if r.End < s {
			g++
		}
	}
	return g
}

// densityConnected reports whether the paper's §5.1 construction connects
// segment su to sv: distinct variables, time-compatible, and ending/starting
// in the same inter-region gap.
func densityConnected(su, sv *lifetime.Segment, regions []lifetime.Region) bool {
	if su.Var == sv.Var {
		return false // chain arcs handle same-variable succession
	}
	if su.EndPoint() >= sv.StartPoint() {
		return false
	}
	return endGap(regions, su.EndPoint()) == startGap(regions, sv.StartPoint())
}

// countTransferArcs computes the exact number of non-segment arcs the
// construction will add (chain + cross + source + sink + bypass), so network
// storage can be sized once.
func countTransferArcs(segs []lifetime.Segment, regions []lifetime.Region, style GraphStyle) (int, error) {
	count := 1 // bypass
	perVar := make(map[string]int, len(segs))
	for i := range segs {
		perVar[segs[i].Var]++
	}
	for _, n := range perVar {
		count += n - 1 // chain arcs
	}
	switch style {
	case DensityRegions:
		m := len(regions)
		for u := range segs {
			for v := range segs {
				if densityConnected(&segs[u], &segs[v], regions) {
					count++
				}
			}
		}
		for v := range segs {
			if startGap(regions, segs[v].StartPoint()) == 0 {
				count++
			}
		}
		for u := range segs {
			if endGap(regions, segs[u].EndPoint()) == m {
				count++
			}
		}
	case AllCompatible:
		for u := range segs {
			for v := range segs {
				su, sv := &segs[u], &segs[v]
				if su.Var != sv.Var && su.EndPoint() < sv.StartPoint() {
					count++
				}
			}
		}
		count += 2 * len(segs) // s→ and →t arcs reach every segment
	default:
		return 0, fmt.Errorf("netbuild: unknown graph style %d", style)
	}
	return count, nil
}

// buildDensityArcs implements the paper's §5.1 construction.
func (b *Build) buildDensityArcs() error {
	m := len(b.Regions)
	for u := range b.Segments {
		for v := range b.Segments {
			su, sv := &b.Segments[u], &b.Segments[v]
			if !densityConnected(su, sv, b.Regions) {
				continue
			}
			kind := b.crossKind(su, sv)
			if err := b.addTransfer(kind, u, v, b.crossCost(su, sv)); err != nil {
				return err
			}
		}
	}
	for v := range b.Segments {
		if startGap(b.Regions, b.Segments[v].StartPoint()) == 0 {
			if err := b.addTransfer(KindSource, -1, v, b.sourceCost(&b.Segments[v])); err != nil {
				return err
			}
		}
	}
	for u := range b.Segments {
		if endGap(b.Regions, b.Segments[u].EndPoint()) == m {
			if err := b.addTransfer(KindSink, u, -1, b.sinkCost(&b.Segments[u])); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildAllCompatibleArcs implements the Chang–Pedram style graph: every
// time-compatible pair is connected, and s/t reach everything.
func (b *Build) buildAllCompatibleArcs() error {
	for u := range b.Segments {
		for v := range b.Segments {
			su, sv := &b.Segments[u], &b.Segments[v]
			if su.Var == sv.Var || su.EndPoint() >= sv.StartPoint() {
				continue
			}
			if err := b.addTransfer(b.crossKind(su, sv), u, v, b.crossCost(su, sv)); err != nil {
				return err
			}
		}
	}
	for v := range b.Segments {
		if err := b.addTransfer(KindSource, -1, v, b.sourceCost(&b.Segments[v])); err != nil {
			return err
		}
	}
	for u := range b.Segments {
		if err := b.addTransfer(KindSink, u, -1, b.sinkCost(&b.Segments[u])); err != nil {
			return err
		}
	}
	return nil
}

func (b *Build) crossKind(su, sv *lifetime.Segment) ArcKind {
	switch {
	case su.Last() && sv.First():
		return KindEq4
	case !su.Last() && sv.First():
		return KindEq6
	case !su.Last() && !sv.First():
		return KindEq7
	default:
		return KindEq8
	}
}
