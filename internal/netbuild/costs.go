package netbuild

import (
	"repro/internal/energy"
	"repro/internal/lifetime"
)

// Arc costs follow the paper's eqs. (3)–(10), decomposed into an exit part
// (what happens to v1 when its register is handed over) and an enter part
// (what happens to v2 when it takes the register):
//
//	exit(v1 at segment i):  −E^m_r(v1)                (boundary read saved)
//	                        +E^m_w(v1) when i < last  (write-back, eqs. 6/7)
//	enter(v2 at segment j): −E^m_w(v2) when j == 1    (memory write saved)
//	                        +E^m_r(v2) when j == 1 and v2 is a block input
//	                         (the input already lives in memory: entering the
//	                          register file costs a load instead of saving a
//	                          write)
//	                        0 when j > 1              (the boundary read
//	                         doubles as the load, eqs. 7/8)
//
// plus the register-file term: static style pays E^r_r(v1) on exit and
// E^r_w(v2) on enter (eq. 4); activity style pays H(v1,v2)·Crw·Vr² on enter
// (eq. 5) and nothing on exit.
//
// Eq. (7) as printed omits the −E^m_r(v1) its sibling eq. (6) carries; the
// consistent decomposition above includes it. CostOptions.PaperEq7 restores
// the literal printed cost.

// CrossCost prices an arc ri(v1)→wj(v2) between distinct variables.
func CrossCost(co CostOptions, su, sv *lifetime.Segment) float64 {
	c := ExitCost(co, su)
	if co.PaperEq7 && !su.Last() && !sv.First() {
		c += co.Model.EMemRead() // cancel the −E^m_r(v1): literal eq. (7)
	}
	c += EnterCost(co, su.Var, sv)
	return c
}

// SourceCost prices s→wj(v): a register starts its life holding v.
func SourceCost(co CostOptions, sv *lifetime.Segment) float64 {
	return EnterCost(co, "", sv)
}

// SinkCost prices ri(v)→t: the register is idle after v's segment i.
func SinkCost(co CostOptions, su *lifetime.Segment) float64 {
	return ExitCost(co, su)
}

// ChainCost prices the same-variable arc ri(v)→wi+1(v) (eq. 9): the value
// stays put, saving the boundary memory read when the baseline carries one;
// no register write happens. Static style still pays the register read
// serving a real read boundary.
func ChainCost(co CostOptions, su *lifetime.Segment) float64 {
	var c float64
	if su.EndHasRead() {
		c -= co.Model.EMemRead()
	}
	if co.Style == energy.Static && su.EndKind != lifetime.BoundCut {
		c += co.Model.ERegRead()
	}
	return c
}

// ExitCost is the exit part of the decomposition above.
func ExitCost(co CostOptions, su *lifetime.Segment) float64 {
	var c float64
	if su.EndHasRead() {
		c -= co.Model.EMemRead()
	}
	if !su.Last() {
		c += co.Model.EMemWrite()
	}
	if co.Style == energy.Static && su.EndKind != lifetime.BoundCut {
		c += co.Model.ERegRead()
	}
	return c
}

// EnterCost is the enter part of the decomposition above; fromVar is the
// variable previously held by the register ("" for the initial state).
func EnterCost(co CostOptions, fromVar string, sv *lifetime.Segment) float64 {
	var c float64
	if sv.First() {
		if sv.StartKind == lifetime.BoundInput {
			c += co.Model.EMemRead()
		} else {
			c -= co.Model.EMemWrite()
		}
	} else if !sv.StartHasRead() {
		// Mid-lifetime register entry at a voluntary cut: no boundary read
		// doubles as the load, so the load is an explicit memory read.
		c += co.Model.EMemRead()
	}
	if co.Style == energy.Static {
		c += co.Model.ERegWrite()
	} else {
		c += co.Model.EActivity(co.H(fromVar, sv.Var))
	}
	return c
}

// BaselineEnergy is the all-in-memory constant term: one memory write per
// non-input variable plus one memory read per boundary that carries one
// (real reads, external reads and staged restricted-access cuts — the
// paper's rlast_v reads).
func BaselineEnergy(co CostOptions, grouped [][]lifetime.Segment) float64 {
	var e float64
	for _, group := range grouped {
		if len(group) == 0 {
			continue
		}
		if group[0].StartKind != lifetime.BoundInput {
			e += co.Model.EMemWrite()
		}
		for i := range group {
			if group[i].EndHasRead() {
				e += co.Model.EMemRead()
			}
		}
	}
	return e
}

func (b *Build) crossCost(su, sv *lifetime.Segment) float64 { return CrossCost(b.Cost, su, sv) }
func (b *Build) sourceCost(sv *lifetime.Segment) float64    { return SourceCost(b.Cost, sv) }
func (b *Build) sinkCost(su *lifetime.Segment) float64      { return SinkCost(b.Cost, su) }
func (b *Build) chainCost(su *lifetime.Segment) float64     { return ChainCost(b.Cost, su) }
