package netbuild

import (
	"fmt"

	"repro/internal/flow"
)

// BatchItem is one prepared allocation problem to coalesce into a batch: a
// built template and the register count to ship through its source/sink.
type BatchItem struct {
	// Tpl is the built network template.
	Tpl *Template
	// Registers is the flow value for this item, as in Prepared.Allocate.
	Registers int
}

// Batch is a merged super-network of disjoint per-item subproblems, laid out
// for flow.SolveBatchWithCosts: item i owns Comps[i]'s node and arc ranges,
// with the component's trailing two nodes reserved for the solver's private
// super source/sink. Arc order within an item matches the item's template
// exactly, so per-item cost vectors copy straight into the merged vector at
// Comps[i].ArcLo and the solved flows slice back out with Sub.
type Batch struct {
	// Net is the merged network (all arc costs zero; batch solves price arcs
	// through the cost vector, as SolveWithCosts does).
	Net *flow.Network
	// Comps is item i's node/arc layout inside Net.
	Comps []flow.BatchComponent
}

// NewBatch merges the items into one batch network. Each item's nodes are
// replayed at a running offset followed by two reserved super-node slots —
// the positions a solo solve's appended super source/sink would occupy — so
// the batch solve of each component is exactly the item's solo solve.
func NewBatch(items []BatchItem) (*Batch, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("netbuild: batch needs at least one item")
	}
	nodes, arcs := 0, 0
	for i, it := range items {
		if it.Tpl == nil {
			return nil, fmt.Errorf("netbuild: batch item %d has no template", i)
		}
		if it.Registers < 0 {
			return nil, fmt.Errorf("netbuild: batch item %d has negative register count %d", i, it.Registers)
		}
		nodes += it.Tpl.Build.Net.N() + 2
		arcs += it.Tpl.Build.Net.M()
	}
	net := flow.NewNetworkSized(nodes, arcs)
	comps := make([]flow.BatchComponent, 0, len(items))
	base, arcBase := 0, 0
	for _, it := range items {
		sub := it.Tpl.Build.Net
		// Bulk-append the template's arcs (costs zeroed; the batch cost
		// vector prices them per solve) and merge its recorded supplies.
		if _, err := net.AppendNetwork(sub, base, true); err != nil {
			return nil, err
		}
		// The solo path ships Registers units S→T on top of any recorded
		// supplies (MinCostFlowValueWithCosts); bake the same imbalance in.
		net.AddSupply(base+it.Tpl.Build.S, int64(it.Registers))
		net.AddSupply(base+it.Tpl.Build.T, -int64(it.Registers))
		comps = append(comps, flow.BatchComponent{
			Lo: base, Hi: base + sub.N() + 2,
			ArcLo: arcBase, ArcHi: arcBase + sub.M(),
		})
		base += sub.N() + 2
		arcBase += sub.M()
	}
	return &Batch{Net: net, Comps: comps}, nil
}

// Sub extracts item i's solution from a batch solution: the item's flow
// slice (aliasing sol.FlowByArc) priced under the item's own cost vector.
// The result is exactly what the item's solo solve returns, the batching
// invariant SolveBatchWithCosts guarantees.
func (b *Batch) Sub(i int, sol *flow.Solution, costs []int64) *flow.Solution {
	c := b.Comps[i]
	flows := sol.FlowByArc[c.ArcLo:c.ArcHi:c.ArcHi]
	out := &flow.Solution{FlowByArc: flows, Augmentations: sol.Augmentations}
	for a, f := range flows {
		out.Cost += f * costs[a]
	}
	return out
}
