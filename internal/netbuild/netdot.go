package netbuild

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// WriteDot renders the constructed network in Graphviz DOT format: segment
// arcs solid, transfer arcs dashed (matching the paper's Figure 1 styling),
// forced segments bold, costs as labels.
func (b *Build) WriteDot(w io.Writer) error {
	g := graph.New(b.Net.N())
	type meta struct {
		label string
		style string
	}
	arcMeta := make(map[graph.Arc]meta)
	for i := range b.Segments {
		a := graph.Arc{From: b.WNode[i], To: b.RNode[i]}
		g.AddArc(a.From, a.To)
		style := "solid"
		if b.Segments[i].Forced {
			style = "bold"
		}
		arcMeta[a] = meta{label: b.Segments[i].Var, style: style}
	}
	for _, t := range b.Transfers {
		from, to := b.S, b.T
		if t.FromSeg >= 0 {
			from = b.RNode[t.FromSeg]
		}
		if t.ToSeg >= 0 {
			to = b.WNode[t.ToSeg]
		}
		g.AddArc(from, to)
		label := ""
		if t.Kind != KindBypass {
			label = fmt.Sprintf("%.3g", t.Energy)
		}
		arcMeta[graph.Arc{From: from, To: to}] = meta{label: label, style: "dashed"}
	}
	return g.WriteDot(w, graph.DotOptions{
		Name:    "lowenergy_network",
		Rankdir: "TB",
		NodeLabel: func(v int) string {
			switch v {
			case b.S:
				return "s"
			case b.T:
				return "t"
			}
			i := (v - 2) / 2
			s := &b.Segments[i]
			if (v-2)%2 == 0 {
				return fmt.Sprintf("w%d(%s)@%d", s.Index+1, s.Var, s.Start)
			}
			return fmt.Sprintf("r%d(%s)@%d", s.Index+1, s.Var, s.End)
		},
		ArcLabel: func(a graph.Arc) string { return arcMeta[a].label },
		ArcStyle: func(a graph.Arc) string { return arcMeta[a].style },
	})
}
