package netbuild

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/flow"
	"repro/internal/lifetime"
)

// hashHamming is a deterministic activity oracle for template tests.
func hashHamming(v1, v2 string) float64 {
	sum := 0
	for _, r := range v1 + v2 {
		sum += int(r)
	}
	return float64(sum%9) / 8.0
}

// templateCostOptions enumerates cost models that move every cost term:
// static, activity, scaled memory voltage and the literal eq. (7).
func templateCostOptions() []CostOptions {
	m := energy.OnChip256x16()
	return []CostOptions{
		{Style: energy.Static, Model: m},
		{Style: energy.Static, Model: m.WithMemVoltage(3.3)},
		{Style: energy.Static, Model: m, PaperEq7: true},
		{Style: energy.Activity, Model: m, H: hashHamming},
		{Style: energy.Activity, Model: m.WithMemVoltage(2.4), H: hashHamming},
	}
}

// TestTemplateCostVectorMatchesBuild: for every cost model, the template's
// recomputed vector must equal, arc by arc, the costs a fresh BuildNetwork
// bakes into the network — the identity that makes cost-swapping sound.
func TestTemplateCostVectorMatchesBuild(t *testing.T) {
	set := fig1Set()
	for _, style := range []GraphStyle{DensityRegions, AllCompatible} {
		for _, mem := range []lifetime.MemoryAccess{lifetime.FullSpeed, {Period: 2, Offset: 2}} {
			grouped, err := set.SplitCuts(mem, lifetime.SplitMinimal, nil)
			if err != nil {
				t.Fatal(err)
			}
			tpl, err := NewTemplate(set, grouped, style, staticCO())
			if err != nil {
				t.Fatal(err)
			}
			for _, co := range templateCostOptions() {
				fresh, err := BuildNetwork(set, grouped, style, co)
				if err != nil {
					t.Fatal(err)
				}
				costs, baseline, err := tpl.CostVector(co)
				if err != nil {
					t.Fatal(err)
				}
				if len(costs) != fresh.Net.M() {
					t.Fatalf("%v: vector has %d entries for %d arcs", style, len(costs), fresh.Net.M())
				}
				for i := range costs {
					_, _, _, _, want := fresh.Net.Arc(flow.ArcID(i))
					if costs[i] != want {
						t.Errorf("%v co=%+v arc %d: cost %d, build has %d", style, co.Style, i, costs[i], want)
					}
				}
				if baseline != fresh.ConstantEnergy {
					t.Errorf("%v: baseline %g, build has %g", style, baseline, fresh.ConstantEnergy)
				}
			}
		}
	}
}

// TestTemplateCostVectorInto reuses the destination buffer.
func TestTemplateCostVectorInto(t *testing.T) {
	set := fig1Set()
	grouped, err := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := NewTemplate(set, grouped, DensityRegions, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	buf, _, err := tpl.CostVectorInto(nil, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := tpl.CostVectorInto(buf, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &buf[0] {
		t.Error("buffer not reused")
	}
}

// TestTemplateValidation surfaces bad cost options.
func TestTemplateValidation(t *testing.T) {
	set := fig1Set()
	grouped, err := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := NewTemplate(set, grouped, DensityRegions, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tpl.CostVector(CostOptions{Style: energy.Activity, Model: energy.OnChip256x16()}); err == nil {
		t.Error("activity style without an oracle accepted")
	}
}

// TestTemplateBuildFor: the view swaps cost options and baseline but shares
// the network.
func TestTemplateBuildFor(t *testing.T) {
	set := fig1Set()
	grouped, err := set.Split(lifetime.FullSpeed, lifetime.SplitMinimal)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := NewTemplate(set, grouped, DensityRegions, staticCO())
	if err != nil {
		t.Fatal(err)
	}
	co := CostOptions{Style: energy.Activity, Model: energy.OnChip256x16(), H: hashHamming}
	view := tpl.BuildFor(co, 123.5)
	if view.Net != tpl.Build.Net {
		t.Error("view does not share the network")
	}
	if view.Cost.Style != energy.Activity || view.ConstantEnergy != 123.5 {
		t.Errorf("view not re-priced: %+v %g", view.Cost.Style, view.ConstantEnergy)
	}
	if tpl.Build.Cost.Style != energy.Static {
		t.Error("template mutated by BuildFor")
	}
}
