package netbuild

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/lifetime"
)

// Template is a constructed flow network whose topology is fixed but whose
// arc costs can be re-derived under any cost model — the reusable half of
// design-space exploration. The topology (segments, regions, transfer arcs,
// lower bounds) depends only on the lifetimes, the split and the graph
// style; the energy model, supply voltage and switching-activity oracle only
// move the arc costs. Building the network once and swapping cost vectors
// per model turns a sweep's per-cell O(segments²) construction into an
// O(arcs) recompute, feeding flow.Network.SolveWithCosts' warm-start path.
type Template struct {
	// Build is the underlying construction; its network, segment and
	// transfer metadata are shared by every cost view. Callers must not
	// mutate it.
	Build   *Build
	grouped [][]lifetime.Segment
}

// NewTemplate builds the network topology once under the given baseline cost
// options. CostVector then re-prices it under any other options.
func NewTemplate(set *lifetime.Set, grouped [][]lifetime.Segment, style GraphStyle, co CostOptions) (*Template, error) {
	b, err := BuildNetwork(set, grouped, style, co)
	if err != nil {
		return nil, err
	}
	return &Template{Build: b, grouped: grouped}, nil
}

// Grouped returns the per-variable segment grouping the template was built
// from; callers must not mutate it.
func (t *Template) Grouped() [][]lifetime.Segment { return t.grouped }

// CostVector computes the per-arc quantized cost vector (in ArcID order) and
// the all-in-memory baseline energy under co. The vector is exactly what
// BuildNetwork would have produced arc-by-arc had it been constructed with
// co, so solving the template's network with it yields the same optimum as a
// fresh build.
func (t *Template) CostVector(co CostOptions) ([]int64, float64, error) {
	return t.CostVectorInto(nil, co)
}

// CostVectorInto is CostVector reusing dst's capacity when possible.
func (t *Template) CostVectorInto(dst []int64, co CostOptions) ([]int64, float64, error) {
	if co.Style == energy.Activity && co.H == nil {
		return nil, 0, fmt.Errorf("netbuild: activity style requires a Hamming oracle")
	}
	if err := co.Model.Validate(); err != nil {
		return nil, 0, err
	}
	m := t.Build.Net.M()
	if cap(dst) < m {
		dst = make([]int64, m)
	} else {
		dst = dst[:m]
	}
	// Segment arcs (and the bypass) cost zero; only transfers carry energy.
	for i := range dst {
		dst[i] = 0
	}
	segs := t.Build.Segments
	for i := range t.Build.Transfers {
		tr := &t.Build.Transfers[i]
		var e float64
		switch tr.Kind {
		case KindBypass:
			continue
		case KindSource:
			e = SourceCost(co, &segs[tr.ToSeg])
		case KindSink:
			e = SinkCost(co, &segs[tr.FromSeg])
		case KindEq9:
			e = ChainCost(co, &segs[tr.FromSeg])
		default: // the eq. 4/6/7/8 cross-variable transfers
			e = CrossCost(co, &segs[tr.FromSeg], &segs[tr.ToSeg])
		}
		dst[tr.Arc] = energy.Quantize(e)
	}
	return dst, BaselineEnergy(co, t.grouped), nil
}

// BuildFor returns a shallow view of the template's Build with the cost
// options and baseline constant swapped to co — what decode needs to price a
// solution obtained under a template cost vector. The view shares the
// network, segments and transfer metadata with the template; the per-arc
// Transfer.Energy fields still reflect the baseline build and are not
// recomputed.
func (t *Template) BuildFor(co CostOptions, baseline float64) *Build {
	view := *t.Build
	view.Cost = co
	view.ConstantEnergy = baseline
	return &view
}
