// Package report renders the stored perf trajectory: per-metric trend tables
// across the recorded history, two-run diffs, and the banded regression
// verdict `leaperf -regress` gates CI on. All comparisons go through
// perfobs/stats — the same median-of-N-with-tolerance-band logic the
// `leabench -gate` uses — so "confidently worse" means one thing repo-wide.
//
// Only metrics with a known improvement direction are ever gated; everything
// else (GC pause maxima, scrape bookkeeping, series envelopes) appears in
// trend tables as information but cannot fail a build, because gating on
// unstable order statistics is how perf gates go flaky and get deleted.
// Records are also only compared within a (kind, label, host-fingerprint)
// group by default: a different machine's numbers are hardware, not a
// regression.
package report

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/perfobs"
	"repro/internal/perfobs/stats"
)

// gatedMetrics maps every metric name the regression gate may act on to its
// improvement direction. A name absent here is informational: trended and
// diffed, never gated. GC-pause maxima stay ungated deliberately — a max of
// samples is not a stable statistic — while medians, throughputs and
// footprints gate.
var gatedMetrics = map[string]stats.Direction{
	"throughput_rps": stats.HigherIsBetter,
	"achieved_rps":   stats.HigherIsBetter,
	"warm_hit_ratio": stats.HigherIsBetter,
	"knee_rps":       stats.HigherIsBetter,
	"ns_per_op":      stats.LowerIsBetter,
	"allocs_per_op":  stats.LowerIsBetter,
	"bytes_per_op":   stats.LowerIsBetter,
	"p50_ns":         stats.LowerIsBetter,
	"p95_ns":         stats.LowerIsBetter,
	"p99_ns":         stats.LowerIsBetter,
	"rss_peak_bytes": stats.LowerIsBetter,
}

// MetricDirection reports the improvement direction of a gated metric; ok is
// false for informational metrics, which trend but never gate.
func MetricDirection(name string) (dir stats.Direction, ok bool) {
	dir, ok = gatedMetrics[name]
	return dir, ok
}

// DefaultMetrics is the trend-table metric selection when the caller names
// none: the headline serving and bench numbers, in display order. Metrics
// absent from a record group are simply not rendered for it.
var DefaultMetrics = []string{
	"throughput_rps",
	"p50_ns",
	"p95_ns",
	"p99_ns",
	"warm_hit_ratio",
	"rss_peak_bytes",
	"gc_pause_max_ns",
	"knee_rps",
	"ns_per_op",
	"allocs_per_op",
}

// group is one (kind, label) slice of the history, in stored order.
type group struct {
	kind, label string
	recs        []perfobs.Record
}

// groupKey formats the group heading.
func (g *group) key() string {
	if g.label == "" {
		return g.kind
	}
	return g.kind + " · " + g.label
}

// groupRecords splits the (already time-sorted) history into (kind, label)
// groups, ordered by first appearance.
func groupRecords(recs []perfobs.Record) []*group {
	byKey := map[string]*group{}
	var out []*group
	for _, r := range recs {
		k := r.Kind + "\x00" + r.Label
		g, ok := byKey[k]
		if !ok {
			g = &group{kind: r.Kind, label: r.Label}
			byKey[k] = g
			out = append(out, g)
		}
		g.recs = append(g.recs, r)
	}
	return out
}

// TrendOptions selects what Trend renders.
type TrendOptions struct {
	// Kinds restricts rendering to these record kinds (empty: all).
	Kinds []string
	// Metrics is the metric selection, in display order (empty:
	// DefaultMetrics).
	Metrics []string
	// Last caps how many trailing records each group renders (0: all).
	Last int
}

// Trend renders one table per (kind, label, metric) present in the history:
// rows are runs in time order, columns are the record rows carrying the
// metric. The tables are byte-stable for a fixed history — the golden test
// pins that — so diffs of saved reports are meaningful.
func Trend(w io.Writer, recs []perfobs.Record, opt TrendOptions) error {
	metrics := opt.Metrics
	if len(metrics) == 0 {
		metrics = DefaultMetrics
	}
	kindOK := func(k string) bool {
		if len(opt.Kinds) == 0 {
			return true
		}
		for _, want := range opt.Kinds {
			if k == want {
				return true
			}
		}
		return false
	}
	rendered := 0
	for _, g := range groupRecords(recs) {
		if !kindOK(g.kind) {
			continue
		}
		window := g.recs
		if opt.Last > 0 && len(window) > opt.Last {
			window = window[len(window)-opt.Last:]
		}
		for _, metric := range metrics {
			cols := metricColumns(window, metric)
			if len(cols) == 0 {
				continue
			}
			rendered++
			if err := renderTrendTable(w, g, window, metric, cols); err != nil {
				return err
			}
		}
	}
	if rendered == 0 {
		_, err := fmt.Fprintln(w, "no records match the selection")
		return err
	}
	return nil
}

// metricColumns lists the row names carrying metric anywhere in the window,
// sorted.
func metricColumns(recs []perfobs.Record, metric string) []string {
	seen := map[string]bool{}
	for _, r := range recs {
		for _, row := range r.Rows {
			if _, ok := row.Metrics[metric]; ok {
				seen[row.Name] = true
			}
		}
	}
	cols := make([]string, 0, len(seen))
	for name := range seen {
		cols = append(cols, name)
	}
	sort.Strings(cols)
	return cols
}

// renderTrendTable writes one metric's run×row table.
func renderTrendTable(w io.Writer, g *group, recs []perfobs.Record, metric string, cols []string) error {
	dirNote := "informational"
	if dir, ok := MetricDirection(metric); ok {
		dirNote = dir.String()
	}
	if _, err := fmt.Fprintf(w, "== %s · %s (%s) ==\n", g.key(), metric, dirNote); err != nil {
		return err
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
		if widths[i] < 10 {
			widths[i] = 10
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-20s %-9s", "started", "run", "commit")
	for i, c := range cols {
		fmt.Fprintf(&b, " %*s", widths[i], c)
	}
	if _, err := fmt.Fprintln(w, b.String()); err != nil {
		return err
	}
	for _, r := range recs {
		b.Reset()
		fmt.Fprintf(&b, "%-20s %-20s %-9s",
			r.StartedAt.UTC().Format("2006-01-02T15:04:05Z"), clip(r.RunID, 20), commitTag(&r))
		for i, c := range cols {
			val := "-"
			if row := r.FindRow(c); row != nil {
				if v, ok := row.Metrics[metric]; ok {
					val = formatMetric(v)
				}
			}
			fmt.Fprintf(&b, " %*s", widths[i], val)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// commitTag renders a record's short commit, "*"-suffixed when dirty.
func commitTag(r *perfobs.Record) string {
	c := clip(r.Commit, 7)
	if r.Dirty {
		c += "*"
	}
	return c
}

// clip truncates s to at most n characters.
func clip(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// formatMetric renders a value compactly and stably: integral values without
// a fraction, everything else with up to 6 significant digits.
func formatMetric(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// DiffOptions configures Diff.
type DiffOptions struct {
	// Band is the tolerance band verdicts are judged under.
	Band stats.Band
}

// Diff compares two records row-by-row and metric-by-metric, printing each
// pair with its ratio and verdict; informational metrics print with an
// "info" verdict. It returns how many gated metrics regressed. Rows present
// in only one record are listed but carry no verdicts.
func Diff(w io.Writer, base, cur *perfobs.Record, opt DiffOptions) (int, error) {
	fmt.Fprintf(w, "diff %s (%s) -> %s (%s), band %.2fx\n",
		base.RunID, commitTag(base), cur.RunID, commitTag(cur), opt.Band.Tolerance)
	fmt.Fprintf(w, "%-24s %-18s %14s %14s %8s  %s\n",
		"row", "metric", "base", "current", "ratio", "verdict")
	regressions := 0
	curRows := map[string]*perfobs.Row{}
	for i := range cur.Rows {
		curRows[cur.Rows[i].Name] = &cur.Rows[i]
	}
	baseSeen := map[string]bool{}
	for i := range base.Rows {
		brow := &base.Rows[i]
		baseSeen[brow.Name] = true
		crow, ok := curRows[brow.Name]
		if !ok {
			fmt.Fprintf(w, "%-24s %-18s %14s %14s %8s  only in base\n", brow.Name, "-", "-", "-", "-")
			continue
		}
		for _, metric := range sortedMetricNames(brow.Metrics) {
			bv := brow.Metrics[metric]
			cv, ok := crow.Metrics[metric]
			if !ok {
				continue
			}
			ratio := "-"
			if bv != 0 {
				ratio = strconv.FormatFloat(cv/bv, 'f', 3, 64)
			}
			verdict := "info"
			if dir, gated := MetricDirection(metric); gated {
				v := opt.Band.Compare(bv, cv, dir)
				verdict = v.String()
				if v == stats.Regressed {
					regressions++
				}
			}
			fmt.Fprintf(w, "%-24s %-18s %14s %14s %8s  %s\n",
				brow.Name, metric, formatMetric(bv), formatMetric(cv), ratio, verdict)
		}
	}
	for _, row := range cur.Rows {
		if !baseSeen[row.Name] {
			fmt.Fprintf(w, "%-24s %-18s %14s %14s %8s  only in current\n", row.Name, "-", "-", "-", "-")
		}
	}
	return regressions, nil
}

// sortedMetricNames returns the map's keys sorted.
func sortedMetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// RegressOptions configures the regression gate.
type RegressOptions struct {
	// Band is the tolerance band (zero: stats.DefaultTolerance).
	Band stats.Band
	// BaselineN caps how many preceding records form the median baseline
	// (default 5).
	BaselineN int
	// AnyHost compares across host fingerprints. Off by default: perf deltas
	// between different machines are hardware, not regressions.
	AnyHost bool
}

// Regression is one confidently-regressed metric: the newest record's value
// against the median of its baselines.
type Regression struct {
	// Kind, Label, Row and Metric locate the regressed number.
	Kind, Label, Row, Metric string
	// Baseline is the median of the BaselineRuns preceding values; Current is
	// the newest record's value.
	Baseline, Current float64
	// RunID names the regressing record.
	RunID string
	// BaselineRuns is how many records the baseline median covers.
	BaselineRuns int
}

// String renders the regression for logs and annotations.
func (r Regression) String() string {
	where := r.Kind
	if r.Label != "" {
		where += "/" + r.Label
	}
	return fmt.Sprintf("%s %s.%s: %s vs median-of-%d baseline %s (run %s)",
		where, r.Row, r.Metric, formatMetric(r.Current), r.BaselineRuns,
		formatMetric(r.Baseline), r.RunID)
}

// Regress applies the gate over the history: within every (kind, label) group
// — host-matched unless AnyHost — the newest record's gated metrics are
// judged against the median of up to BaselineN preceding records. It returns
// the confident regressions plus notes explaining groups that could not be
// gated (no baseline on this host, single record, …); an empty regression
// list with non-empty notes is a pass with caveats, which is exactly what a
// fresh CI host sees.
func Regress(recs []perfobs.Record, opt RegressOptions) ([]Regression, []string) {
	if opt.BaselineN <= 0 {
		opt.BaselineN = 5
	}
	var regs []Regression
	var notes []string
	for _, g := range groupRecords(recs) {
		window := g.recs
		cur := window[len(window)-1]
		var baselines []perfobs.Record
		for _, r := range window[:len(window)-1] {
			if !opt.AnyHost && r.Host.Key() != cur.Host.Key() {
				continue
			}
			baselines = append(baselines, r)
		}
		if len(baselines) == 0 {
			if len(window) == 1 {
				notes = append(notes, fmt.Sprintf("%s: single record, nothing to gate against", g.key()))
			} else {
				notes = append(notes, fmt.Sprintf("%s: no baseline from host %q (%d records from other hosts); not gated",
					g.key(), cur.Host.Key(), len(window)-1))
			}
			continue
		}
		if len(baselines) > opt.BaselineN {
			baselines = baselines[len(baselines)-opt.BaselineN:]
		}
		regs = append(regs, regressRecord(&cur, baselines, opt.Band, g)...)
	}
	sort.Slice(regs, func(i, j int) bool {
		a, b := regs[i], regs[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Metric < b.Metric
	})
	return regs, notes
}

// regressRecord judges one record against its baseline set.
func regressRecord(cur *perfobs.Record, baselines []perfobs.Record, band stats.Band, g *group) []Regression {
	var out []Regression
	for _, row := range cur.Rows {
		for _, metric := range sortedMetricNames(row.Metrics) {
			dir, gated := MetricDirection(metric)
			if !gated {
				continue
			}
			var baseVals []float64
			for _, b := range baselines {
				if brow := b.FindRow(row.Name); brow != nil {
					if v, ok := brow.Metrics[metric]; ok {
						baseVals = append(baseVals, v)
					}
				}
			}
			if len(baseVals) == 0 {
				continue
			}
			base := stats.Median(baseVals)
			if band.Compare(base, row.Metrics[metric], dir) == stats.Regressed {
				out = append(out, Regression{
					Kind: g.kind, Label: g.label, Row: row.Name, Metric: metric,
					Baseline: base, Current: row.Metrics[metric],
					RunID: cur.RunID, BaselineRuns: len(baseVals),
				})
			}
		}
	}
	return out
}
