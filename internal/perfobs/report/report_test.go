package report

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/perfobs"
	"repro/internal/perfobs/stats"
	"repro/internal/perfobs/store"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/perfobs/report -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// loadHistory reads the fixed JSONL fixture.
func loadHistory(t *testing.T) []perfobs.Record {
	t.Helper()
	// The fixture lives in one file; Store.Load wants a directory of *.jsonl,
	// so parse it line-wise through the same ParseRecord path.
	data, err := os.ReadFile(filepath.Join("testdata", "history.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []perfobs.Record
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, err := store.ParseRecord(line)
		if err != nil {
			t.Fatalf("fixture line unparsable: %v", err)
		}
		recs = append(recs, *rec)
	}
	if len(recs) != 5 {
		t.Fatalf("fixture has %d records, want 5", len(recs))
	}
	return recs
}

// checkGolden compares got against the named golden file (or rewrites it
// under -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestTrendGolden(t *testing.T) {
	recs := loadHistory(t)
	var buf bytes.Buffer
	if err := Trend(&buf, recs, TrendOptions{}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trend.golden", buf.Bytes())
}

func TestDiffGolden(t *testing.T) {
	recs := loadHistory(t)
	// The two bench records, oldest as base.
	var bench []perfobs.Record
	for _, r := range recs {
		if r.Kind == "bench" {
			bench = append(bench, r)
		}
	}
	if len(bench) != 2 {
		t.Fatalf("fixture has %d bench records, want 2", len(bench))
	}
	var buf bytes.Buffer
	regs, err := Diff(&buf, &bench[0], &bench[1], DiffOptions{Band: stats.Band{Tolerance: 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	if regs != 0 {
		t.Errorf("fixture diff flagged %d regressions, want 0", regs)
	}
	checkGolden(t, "diff.golden", buf.Bytes())
}

func TestTrendSelectsKindsAndMetrics(t *testing.T) {
	recs := loadHistory(t)
	var buf bytes.Buffer
	if err := Trend(&buf, recs, TrendOptions{Kinds: []string{"bench"}, Metrics: []string{"ns_per_op"}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("bench · leabench · ns_per_op")) {
		t.Errorf("missing bench table:\n%s", out)
	}
	if bytes.Contains(buf.Bytes(), []byte("load ·")) {
		t.Errorf("kind filter leaked load tables:\n%s", out)
	}
}

func TestTrendEmptySelection(t *testing.T) {
	var buf bytes.Buffer
	if err := Trend(&buf, nil, TrendOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("no records")) {
		t.Errorf("empty history should say so, got %q", buf.String())
	}
}

// mkRec builds a load record with a single summary row.
func mkRec(id string, at time.Time, host perfobs.Host, metrics map[string]float64) perfobs.Record {
	r := perfobs.Record{
		RunID: id, Commit: "c", GoVersion: "go1.22", Host: host,
		StartedAt: at, Kind: "load", Label: "open",
	}
	r.AddRow("summary", metrics)
	return r
}

var testHost = perfobs.Host{OS: "linux", Arch: "amd64", GOMAXPROCS: 4, NumCPU: 4, CPUModel: "testcpu"}

func TestRegressFlagsInjectedSlowdown(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	var recs []perfobs.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, mkRec(fmt.Sprintf("r%d", i), base.Add(time.Duration(i)*time.Hour), testHost,
			map[string]float64{"p99_ns": 1000, "throughput_rps": 500}))
	}
	// 5× latency on the newest record must flag, and only p99_ns.
	recs = append(recs, mkRec("r-slow", base.Add(10*time.Hour), testHost,
		map[string]float64{"p99_ns": 5000, "throughput_rps": 500}))
	regs, _ := Regress(recs, RegressOptions{})
	if len(regs) != 1 || regs[0].Metric != "p99_ns" {
		t.Fatalf("regressions = %+v, want exactly one p99_ns", regs)
	}
	if regs[0].Baseline != 1000 || regs[0].Current != 5000 {
		t.Fatalf("regression values wrong: %+v", regs[0])
	}
}

func TestRegressFlagsThroughputCollapse(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	var recs []perfobs.Record
	for i := 0; i < 3; i++ {
		recs = append(recs, mkRec(fmt.Sprintf("r%d", i), base.Add(time.Duration(i)*time.Hour), testHost,
			map[string]float64{"throughput_rps": 1000}))
	}
	recs = append(recs, mkRec("r-slow", base.Add(10*time.Hour), testHost,
		map[string]float64{"throughput_rps": 200}))
	regs, _ := Regress(recs, RegressOptions{})
	if len(regs) != 1 || regs[0].Metric != "throughput_rps" {
		t.Fatalf("regressions = %+v, want throughput_rps flagged", regs)
	}
}

func TestRegressIgnoresOtherHosts(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	otherHost := perfobs.Host{OS: "linux", Arch: "arm64", GOMAXPROCS: 8, NumCPU: 8, CPUModel: "other"}
	recs := []perfobs.Record{
		mkRec("r0", base, otherHost, map[string]float64{"p99_ns": 100}),
		mkRec("r1", base.Add(time.Hour), testHost, map[string]float64{"p99_ns": 5000}),
	}
	regs, notes := Regress(recs, RegressOptions{})
	if len(regs) != 0 {
		t.Fatalf("cross-host comparison flagged: %+v", regs)
	}
	if len(notes) == 0 {
		t.Fatal("skipped group produced no explanatory note")
	}
	// With AnyHost the same history gates (and flags the 50× jump).
	regs, _ = Regress(recs, RegressOptions{AnyHost: true})
	if len(regs) != 1 {
		t.Fatalf("AnyHost comparison missed the regression: %+v", regs)
	}
}

func TestRegressNoiseWithinBandNeverFlags(t *testing.T) {
	// Property: histories whose values wobble within the band must never
	// flag, across many seeds; scaling the newest record past the band must
	// always flag. This pins the gate's two contractual behaviours.
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
		n := 4 + rng.Intn(5)
		var recs []perfobs.Record
		for i := 0; i < n; i++ {
			// ±30% wobble: well inside the default 2× band even against the
			// median of the others.
			noise := func() float64 { return 1 + (rng.Float64()-0.5)*0.6 }
			recs = append(recs, mkRec(fmt.Sprintf("s%dr%d", seed, i),
				base.Add(time.Duration(i)*time.Hour), testHost,
				map[string]float64{
					"p99_ns":         3e6 * noise(),
					"throughput_rps": 2000 * noise(),
					"warm_hit_ratio": 0.5 * noise(),
				}))
		}
		regs, _ := Regress(recs, RegressOptions{})
		if len(regs) != 0 {
			t.Fatalf("seed %d: in-band noise flagged: %+v", seed, regs)
		}
		// Now push the newest record's latency 5× past its own value: must
		// flag regardless of where the noise left the baseline.
		slow := recs[len(recs)-1]
		slow.RunID += "-slow"
		slow.StartedAt = slow.StartedAt.Add(time.Hour)
		slow.Rows = nil
		slow.AddRow("summary", map[string]float64{
			"p99_ns": recs[len(recs)-1].FindRow("summary").Metrics["p99_ns"] * 5 * 1.3,
		})
		regs, _ = Regress(append(recs, slow), RegressOptions{})
		found := false
		for _, r := range regs {
			if r.Metric == "p99_ns" {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: injected 5× slowdown not flagged (regs %+v)", seed, regs)
		}
	}
}

func TestRegressSingleRecordIsNotedNotGated(t *testing.T) {
	recs := []perfobs.Record{mkRec("only", time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC), testHost,
		map[string]float64{"p99_ns": 100})}
	regs, notes := Regress(recs, RegressOptions{})
	if len(regs) != 0 || len(notes) != 1 {
		t.Fatalf("single record: regs=%v notes=%v", regs, notes)
	}
}

func TestMetricDirection(t *testing.T) {
	if dir, ok := MetricDirection("p99_ns"); !ok || dir != stats.LowerIsBetter {
		t.Error("p99_ns must gate lower-is-better")
	}
	if dir, ok := MetricDirection("throughput_rps"); !ok || dir != stats.HigherIsBetter {
		t.Error("throughput_rps must gate higher-is-better")
	}
	for _, info := range []string{"gc_pause_max_ns", "scrape_total_ns", "samples", "first", "max"} {
		if _, ok := MetricDirection(info); ok {
			t.Errorf("%s must stay informational, not gated", info)
		}
	}
}
