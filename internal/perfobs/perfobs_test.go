package perfobs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectMetaFillsRuntimeFields(t *testing.T) {
	m := CollectMeta()
	if m.GoVersion == "" || m.Host.OS == "" || m.Host.Arch == "" {
		t.Fatalf("runtime fields empty: %+v", m)
	}
	if m.Host.GOMAXPROCS <= 0 || m.Host.NumCPU <= 0 {
		t.Fatalf("cpu fields not positive: %+v", m.Host)
	}
	// Commit is either a hex hash (this repo is a checkout) or "unknown".
	if m.Commit != "unknown" && len(m.Commit) < 7 {
		t.Fatalf("odd commit %q", m.Commit)
	}
}

func TestNewRecordAndValidate(t *testing.T) {
	meta := CollectMeta()
	r := NewRecord("bench", "leabench", meta)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.StartedAt.IsZero() || !strings.Contains(r.RunID, "-") {
		t.Fatalf("skeleton incomplete: %+v", r)
	}
	if r.Commit != meta.Commit || r.GoVersion != meta.GoVersion {
		t.Fatalf("meta not copied: %+v", r)
	}
	r2 := NewRecord("bench", "", meta)
	if r.RunID == r2.RunID {
		t.Fatal("run IDs collide")
	}
}

func TestValidateRejectsUnsafeKinds(t *testing.T) {
	for _, kind := range []string{"", "a/b", "a b", "a\tb", "a\nb", `a\b`} {
		r := NewRecord(kind, "", Meta{})
		if err := r.Validate(); err == nil {
			t.Errorf("kind %q accepted", kind)
		}
	}
}

func TestRowHelpers(t *testing.T) {
	r := NewRecord("load", "", Meta{})
	src := map[string]float64{"x": 1}
	r.AddRow("summary", src)
	src["x"] = 99 // the record must hold a copy
	if got := r.FindRow("summary"); got == nil || got.Metrics["x"] != 1 {
		t.Fatalf("AddRow aliased the caller's map: %+v", r.Rows)
	}
	if r.FindRow("absent") != nil {
		t.Fatal("FindRow invented a row")
	}
}

func TestHostKeyDistinguishesMachines(t *testing.T) {
	a := Host{OS: "linux", Arch: "amd64", GOMAXPROCS: 4, CPUModel: "x"}
	b := a
	b.GOMAXPROCS = 8
	if a.Key() == b.Key() {
		t.Fatal("different GOMAXPROCS produced the same host key")
	}
}

func TestRecordJSONSchema(t *testing.T) {
	// The on-disk field names are a contract (ISSUE schema): run_id, commit,
	// dirty, go_version, host_fingerprint, started_at, kind, rows.
	r := NewRecord("bench", "l", CollectMeta())
	r.AddRow("a", map[string]float64{"x": 1})
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"run_id"`, `"commit"`, `"dirty"`, `"go_version"`,
		`"host_fingerprint"`, `"started_at"`, `"kind"`, `"rows"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("marshalled record lacks %s: %s", field, data)
		}
	}
}
