// Package collector samples a running leaserved without instrumenting it: on
// a configurable interval it scrapes the daemon's /metrics text endpoint —
// which, since the perfobs wiring, carries process gauges (RSS, heap, GC
// pause quantiles, goroutines) alongside the serving counters — and keeps
// every scrape as a typed Sample. The collected series reduce to a Summary
// (first/last/min/max per metric plus derived throughput, warm-hit ratio,
// RSS peak and max GC pause) and from there to a perfobs.Record for the
// trend store.
//
// The collector deliberately imports nothing from internal/serve: it speaks
// to the daemon exactly like a human curl does, over the text exposition, so
// what it stores is by construction what an operator would have seen. Its
// own perturbation of the target is bounded and measured — every scrape's
// wall time is accounted in the summary, and the CI smoke asserts the total
// stays under 1% of the observation window.
package collector

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/perfobs"
)

// Config sizes a collector run.
type Config struct {
	// URL is the daemon base URL (the collector appends /metrics).
	URL string
	// Interval is the scrape period (default 250ms, minimum 10ms).
	Interval time.Duration
	// Client is the HTTP client to scrape with (default: 5s-timeout client).
	Client *http.Client
	// MaxSamples caps the sample buffer as a runaway guard (default 100000).
	MaxSamples int
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Interval < 10*time.Millisecond {
		c.Interval = 10 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 100000
	}
	return c
}

// Sample is one scrape: the parsed metric map plus the scrape's own cost.
type Sample struct {
	// OffsetNS is the scrape start relative to the run start.
	OffsetNS int64 `json:"offset_ns"`
	// ScrapeNS is how long the scrape itself took (the collector's
	// perturbation budget is the sum of these).
	ScrapeNS int64 `json:"scrape_ns"`
	// Metrics maps metric name to value. Labelled series on the page
	// (`requests_total{shard="1"}`) are summed into their base name, which is
	// exact for the counters a sharded daemon splits and is how the fleet
	// totals are defined.
	Metrics map[string]float64 `json:"metrics"`
}

// Series summarises one metric across the run.
type Series struct {
	First float64 `json:"first"`
	Last  float64 `json:"last"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// Summary is a finished run reduced to the numbers the trend store keeps.
type Summary struct {
	// Samples and Errors count successful and failed scrapes.
	Samples int `json:"samples"`
	Errors  int `json:"errors"`
	// ElapsedNS is the observation window; ScrapeTotalNS and ScrapeMaxNS
	// bound the collector's own footprint inside it.
	ElapsedNS     int64 `json:"elapsed_ns"`
	ScrapeTotalNS int64 `json:"scrape_total_ns"`
	ScrapeMaxNS   int64 `json:"scrape_max_ns"`
	// Series holds the per-metric first/last/min/max envelope.
	Series map[string]Series `json:"series"`
	// Derived headline numbers (zero when the underlying series are absent):
	// throughput from the requests_total delta over the window, warm-hit
	// ratio from the cache counter deltas, and the process-gauge peaks.
	ThroughputRPS    float64 `json:"throughput_rps"`
	WarmHitRatio     float64 `json:"warm_hit_ratio"`
	ErrorsDelta      float64 `json:"errors_delta"`
	RSSPeakBytes     float64 `json:"rss_peak_bytes"`
	HeapPeakBytes    float64 `json:"heap_peak_bytes"`
	GCPauseMaxNS     float64 `json:"gc_pause_max_ns"`
	GCPauseP99NS     float64 `json:"gc_pause_p99_ns"`
	GoroutinesMax    float64 `json:"goroutines_max"`
	OverheadFraction float64 `json:"overhead_fraction"`
}

// Result is a completed collector run.
type Result struct {
	// Samples holds every successful scrape in order.
	Samples []Sample `json:"samples"`
	// Errors counts failed scrapes (connection refused during daemon
	// startup/shutdown is normal at the run edges).
	Errors int `json:"errors"`
	// ElapsedNS is the wall time between Run start and finish.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// Collector scrapes one target. Create with New; a Collector is single-use
// per Run call but Run may be called repeatedly.
type Collector struct {
	cfg Config
}

// New validates cfg and returns a collector.
func New(cfg Config) (*Collector, error) {
	if strings.TrimSpace(cfg.URL) == "" {
		return nil, fmt.Errorf("collector: need a target URL")
	}
	cfg.URL = strings.TrimRight(cfg.URL, "/")
	return &Collector{cfg: cfg.withDefaults()}, nil
}

// Run scrapes the target every Interval until the duration elapses or ctx is
// cancelled, whichever comes first, and returns the collected samples. The
// first scrape happens immediately, so even a run shorter than one interval
// yields a sample. Scrape failures are counted, never fatal — a daemon
// restarting mid-run shows up as a gap, not a dead collector.
func (c *Collector) Run(ctx context.Context, d time.Duration) (*Result, error) {
	if d <= 0 {
		return nil, fmt.Errorf("collector: need a positive duration, got %v", d)
	}
	res := &Result{}
	start := time.Now()
	deadline := start.Add(d)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		t0 := time.Now()
		metrics, err := c.scrape(ctx)
		if err != nil {
			res.Errors++
		} else if len(res.Samples) < c.cfg.MaxSamples {
			res.Samples = append(res.Samples, Sample{
				OffsetNS: t0.Sub(start).Nanoseconds(),
				ScrapeNS: time.Since(t0).Nanoseconds(),
				Metrics:  metrics,
			})
		}
		if time.Now().After(deadline) {
			break
		}
		select {
		case <-ctx.Done():
			res.ElapsedNS = time.Since(start).Nanoseconds()
			return res, nil
		case <-ticker.C:
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	res.ElapsedNS = time.Since(start).Nanoseconds()
	return res, nil
}

// scrape fetches and parses one /metrics page.
func (c *Collector) scrape(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.URL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	return ParseMetrics(io.LimitReader(resp.Body, 8<<20))
}

// ParseMetrics parses a text metric exposition ("name value" lines, names
// optionally carrying a {label="…"} set) into a flat map. Labelled series
// are summed into their base name; blank lines and lines starting with '#'
// are skipped; a malformed line is an error, because silently dropping
// samples is how observability rots.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("metrics line %d: no value in %q", lineNo, line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return nil, fmt.Errorf("metrics line %d: unterminated label set in %q", lineNo, line)
			}
			name = name[:i]
		}
		if name == "" {
			return nil, fmt.Errorf("metrics line %d: empty metric name in %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: bad value in %q: %v", lineNo, line, err)
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summarize reduces a run to its summary envelope and derived numbers.
func (r *Result) Summarize() Summary {
	s := Summary{
		Samples:   len(r.Samples),
		Errors:    r.Errors,
		ElapsedNS: r.ElapsedNS,
		Series:    make(map[string]Series),
	}
	for _, smp := range r.Samples {
		s.ScrapeTotalNS += smp.ScrapeNS
		if smp.ScrapeNS > s.ScrapeMaxNS {
			s.ScrapeMaxNS = smp.ScrapeNS
		}
		for name, v := range smp.Metrics {
			sr, seen := s.Series[name]
			if !seen {
				sr = Series{First: v, Min: v, Max: v}
			}
			if v < sr.Min {
				sr.Min = v
			}
			if v > sr.Max {
				sr.Max = v
			}
			sr.Last = v
			sr.Count++
			s.Series[name] = sr
		}
	}
	if s.ElapsedNS > 0 {
		s.OverheadFraction = float64(s.ScrapeTotalNS) / float64(s.ElapsedNS)
	}
	if req, ok := s.Series["requests_total"]; ok && s.ElapsedNS > 0 {
		s.ThroughputRPS = (req.Last - req.First) / (float64(s.ElapsedNS) / 1e9)
	}
	hits, hok := s.Series["cache_hits_total"]
	misses, mok := s.Series["cache_misses_total"]
	if hok && mok {
		dh, dm := hits.Last-hits.First, misses.Last-misses.First
		if dh+dm > 0 {
			s.WarmHitRatio = dh / (dh + dm)
		}
	}
	if errs, ok := s.Series["errors_total"]; ok {
		s.ErrorsDelta = errs.Last - errs.First
	}
	if rss, ok := s.Series["proc_rss_bytes"]; ok {
		s.RSSPeakBytes = rss.Max
	}
	if heap, ok := s.Series["proc_heap_live_bytes"]; ok {
		s.HeapPeakBytes = heap.Max
	}
	if gp, ok := s.Series["proc_gc_pause_max_ns"]; ok {
		s.GCPauseMaxNS = gp.Max
	}
	if gp, ok := s.Series["proc_gc_pause_p99_ns"]; ok {
		s.GCPauseP99NS = gp.Max
	}
	if g, ok := s.Series["proc_goroutines"]; ok {
		s.GoroutinesMax = g.Max
	}
	return s
}

// procSeries are the process-gauge series whose envelopes the record keeps as
// their own rows, so the stored trajectory carries the RSS and GC-pause
// time-series shape, not only the peaks.
var procSeries = []string{
	"proc_rss_bytes",
	"proc_heap_live_bytes",
	"proc_gc_pause_max_ns",
	"proc_gc_pause_p50_ns",
	"proc_gc_pause_p99_ns",
	"proc_goroutines",
	"proc_gc_cycles_total",
}

// Record reduces the run to a trajectory record of the given kind and label:
// a "summary" row with the derived headline numbers and scrape-overhead
// accounting, plus one envelope row per process series that appeared in the
// scrape.
func (r *Result) Record(kind, label string, meta perfobs.Meta) *perfobs.Record {
	s := r.Summarize()
	rec := perfobs.NewRecord(kind, label, meta)
	rec.AddRow("summary", map[string]float64{
		"samples":           float64(s.Samples),
		"scrape_errors":     float64(s.Errors),
		"elapsed_ns":        float64(s.ElapsedNS),
		"scrape_total_ns":   float64(s.ScrapeTotalNS),
		"scrape_max_ns":     float64(s.ScrapeMaxNS),
		"overhead_fraction": s.OverheadFraction,
		"throughput_rps":    s.ThroughputRPS,
		"warm_hit_ratio":    s.WarmHitRatio,
		"errors_delta":      s.ErrorsDelta,
		"rss_peak_bytes":    s.RSSPeakBytes,
		"heap_peak_bytes":   s.HeapPeakBytes,
		"gc_pause_max_ns":   s.GCPauseMaxNS,
		"gc_pause_p99_ns":   s.GCPauseP99NS,
		"goroutines_max":    s.GoroutinesMax,
	})
	names := make([]string, 0, len(procSeries))
	names = append(names, procSeries...)
	sort.Strings(names)
	for _, name := range names {
		sr, ok := s.Series[name]
		if !ok {
			continue
		}
		rec.AddRow(name, map[string]float64{
			"first": sr.First,
			"last":  sr.Last,
			"min":   sr.Min,
			"max":   sr.Max,
			"count": float64(sr.Count),
		})
	}
	return rec
}
