package collector

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/perfobs"
)

// testMeta is a fixed provenance block for deterministic records.
func testMeta() perfobs.Meta {
	return perfobs.Meta{
		Commit:    "abc1234",
		GoVersion: "go1.22",
		Host:      perfobs.Host{OS: "linux", Arch: "amd64", GOMAXPROCS: 4, NumCPU: 4},
	}
}

func TestParseMetrics(t *testing.T) {
	page := `requests_total 10
requests_total{shard="1"} 5
cache_hits_total 3

# a comment
latency_p99_ns{shard="0",zone="a"} 250
proc_rss_bytes 1048576
`
	m, err := ParseMetrics(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if m["requests_total"] != 15 {
		t.Errorf("labelled series not summed into base name: %v", m["requests_total"])
	}
	if m["cache_hits_total"] != 3 || m["latency_p99_ns"] != 250 || m["proc_rss_bytes"] != 1048576 {
		t.Errorf("parsed map wrong: %v", m)
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"novalue",
		"name notanumber",
		`name{unterminated 5`,
		`{nameless="x"} 5`,
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) accepted malformed input", bad)
		}
	}
}

// fakeDaemon serves an evolving /metrics page: requests_total advances by
// step per scrape, proc gauges wiggle deterministically.
func fakeDaemon(t *testing.T, step int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var scrapes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		n := scrapes.Add(1)
		fmt.Fprintf(w, "requests_total %d\n", n*step)
		fmt.Fprintf(w, "cache_hits_total %d\n", n*step*3/4)
		fmt.Fprintf(w, "cache_misses_total %d\n", n*step/4)
		fmt.Fprintf(w, "errors_total 0\n")
		fmt.Fprintf(w, "proc_rss_bytes %d\n", 1_000_000+n*1000)
		fmt.Fprintf(w, "proc_gc_pause_max_ns %d\n", 50_000+(n%3)*10_000)
		fmt.Fprintf(w, "proc_goroutines %d\n", 10+n%2)
	}))
	t.Cleanup(srv.Close)
	return srv, &scrapes
}

func TestCollectorRunAndSummarize(t *testing.T) {
	srv, scrapes := fakeDaemon(t, 100)
	c, err := New(Config{URL: srv.URL, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 3 {
		t.Fatalf("got %d samples over 10 intervals, want at least 3", len(res.Samples))
	}
	if int64(len(res.Samples)) != scrapes.Load() {
		t.Fatalf("samples %d != scrapes served %d", len(res.Samples), scrapes.Load())
	}
	s := res.Summarize()
	if s.Samples != len(res.Samples) || s.Errors != 0 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	if s.ThroughputRPS <= 0 {
		t.Fatalf("throughput not derived from requests_total delta: %+v", s)
	}
	// hits:misses advance 3:1 → warm ratio 0.75.
	if s.WarmHitRatio < 0.7 || s.WarmHitRatio > 0.8 {
		t.Fatalf("warm-hit ratio %v, want ≈0.75", s.WarmHitRatio)
	}
	if s.RSSPeakBytes <= 1_000_000 {
		t.Fatalf("rss peak %v not tracked", s.RSSPeakBytes)
	}
	if s.GCPauseMaxNS < 50_000 {
		t.Fatalf("gc pause max %v not tracked", s.GCPauseMaxNS)
	}
	if s.ScrapeTotalNS <= 0 || s.ScrapeMaxNS <= 0 || s.OverheadFraction <= 0 {
		t.Fatalf("scrape overhead not accounted: %+v", s)
	}
	rss := s.Series["proc_rss_bytes"]
	if rss.Count != s.Samples || rss.Last <= rss.First {
		t.Fatalf("rss series envelope wrong: %+v", rss)
	}
}

func TestCollectorRecordCarriesProcSeries(t *testing.T) {
	srv, _ := fakeDaemon(t, 50)
	c, err := New(Config{URL: srv.URL, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Record("smoke", "unit", testMeta())
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := rec.FindRow("summary")
	if sum == nil || sum.Metrics["throughput_rps"] <= 0 {
		t.Fatalf("summary row missing or empty: %+v", rec.Rows)
	}
	for _, series := range []string{"proc_rss_bytes", "proc_gc_pause_max_ns"} {
		row := rec.FindRow(series)
		if row == nil {
			t.Fatalf("record lacks %s series row; rows: %+v", series, rec.Rows)
		}
		if row.Metrics["count"] <= 0 || row.Metrics["max"] <= 0 {
			t.Fatalf("%s envelope empty: %+v", series, row.Metrics)
		}
	}
}

func TestCollectorCountsScrapeErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := New(Config{URL: srv.URL, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || len(res.Samples) != 0 {
		t.Fatalf("failing target: errors=%d samples=%d, want all errors", res.Errors, len(res.Samples))
	}
}

func TestCollectorHonoursContext(t *testing.T) {
	srv, _ := fakeDaemon(t, 10)
	c, err := New(Config{URL: srv.URL, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := c.Run(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled run did not stop early")
	}
}

func TestNewRejectsEmptyURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty URL")
	}
}
