// Package store is the append-only trend store of the perf-observability
// subsystem: one JSONL file per record kind under a trajectory directory
// (trajectory/bench.jsonl, trajectory/load.jsonl, …), each line one
// perfobs.Record. Appending never rewrites history — that is the whole
// point: every CI run and local measurement extends the trajectory, and
// records from different commits merge trivially because the files are
// line-append-only (a git merge of two appended histories is a union).
//
// Loading is deliberately forgiving: a corrupt or half-merged line is
// reported as a warning and skipped, never fatal, so one bad merge cannot
// take down the whole trend history.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/perfobs"
)

// Store reads and appends records under one trajectory directory. The zero
// value is unusable; create with Open.
type Store struct {
	dir string
}

// Open returns a store rooted at dir. The directory is created lazily on
// first append, so opening a store never touches the filesystem.
func Open(dir string) *Store { return &Store{dir: dir} }

// Dir reports the trajectory directory.
func (s *Store) Dir() string { return s.dir }

// fileFor maps a record kind to its JSONL file.
func (s *Store) fileFor(kind string) string {
	return filepath.Join(s.dir, kind+".jsonl")
}

// Append validates r and appends it as one JSONL line to its kind's file,
// creating the directory and file as needed. The write is a single
// O_APPEND write of one line, so concurrent emitters (parallel CI steps)
// interleave whole records rather than corrupting each other.
func (s *Store) Append(r *perfobs.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: marshal record %s: %w", r.RunID, err)
	}
	line = append(line, '\n')
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(s.fileFor(r.Kind), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("store: append %s: %w", r.RunID, err)
	}
	return f.Close()
}

// Load reads every *.jsonl file under the trajectory directory and returns
// the merged history sorted by start time (run ID breaking ties, so the
// order is total and stable). Unparsable lines are skipped and reported as
// warnings, one per line, with their file and line number. A missing
// directory is an empty history, not an error.
func (s *Store) Load() ([]perfobs.Record, []string, error) {
	entries, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	var recs []perfobs.Record
	var warnings []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		fileRecs, fileWarn, err := loadFile(path)
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, fileRecs...)
		warnings = append(warnings, fileWarn...)
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if !recs[i].StartedAt.Equal(recs[j].StartedAt) {
			return recs[i].StartedAt.Before(recs[j].StartedAt)
		}
		return recs[i].RunID < recs[j].RunID
	})
	return recs, warnings, nil
}

// loadFile parses one JSONL file into records plus per-line warnings.
func loadFile(path string) ([]perfobs.Record, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var recs []perfobs.Record
	var warnings []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("%s:%d: %v", path, lineNo, err))
			continue
		}
		recs = append(recs, *rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	return recs, warnings, nil
}

// ParseRecord decodes and validates one JSONL line. Unknown fields are
// ignored (schema growth must not break old readers) but a line that is not
// a JSON object, or that lacks the required kind/run_id, is an error.
func ParseRecord(line []byte) (*perfobs.Record, error) {
	var rec perfobs.Record
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("bad record: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return &rec, nil
}
