package store

import (
	"encoding/json"
	"testing"
)

// FuzzParseRecord hammers the record parser with arbitrary bytes: it must
// never panic, and any line it accepts must survive a marshal/parse round
// trip with its identity (run_id, kind, label) intact — the property the
// trend store's merge-across-commits behaviour rests on.
func FuzzParseRecord(f *testing.F) {
	f.Add([]byte(`{"run_id":"r1","kind":"bench","rows":[{"name":"a","metrics":{"x":1}}]}`))
	f.Add([]byte(`{"run_id":"r2","kind":"load","label":"open/zipf","started_at":"2026-08-01T12:00:00Z"}`))
	f.Add([]byte(`{"kind":"bench"}`))
	f.Add([]byte(`{broken`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte("\x00\xff"))
	f.Add([]byte(`{"run_id":"r","kind":"k","rows":[{"metrics":{"":-1e308}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ParseRecord(data)
		if err != nil {
			return
		}
		if rec.Kind == "" || rec.RunID == "" {
			t.Fatalf("parser accepted a record missing identity: %+v", rec)
		}
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-marshal: %v", err)
		}
		again, err := ParseRecord(out)
		if err != nil {
			t.Fatalf("re-marshalled record does not re-parse: %v\n%s", err, out)
		}
		if again.RunID != rec.RunID || again.Kind != rec.Kind || again.Label != rec.Label {
			t.Fatalf("identity changed across round trip: %+v vs %+v", rec, again)
		}
	})
}
