package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/perfobs"
)

// testMeta is a fixed provenance block for deterministic records.
func testMeta() perfobs.Meta {
	return perfobs.Meta{
		Commit:    "abc1234",
		GoVersion: "go1.22",
		Host:      perfobs.Host{OS: "linux", Arch: "amd64", GOMAXPROCS: 4, NumCPU: 4, CPUModel: "testcpu"},
	}
}

// rec builds a minimal valid record at the given start offset.
func rec(t *testing.T, kind, label string, offset time.Duration) *perfobs.Record {
	t.Helper()
	r := perfobs.NewRecord(kind, label, testMeta())
	r.StartedAt = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC).Add(offset)
	r.RunID = "run-" + kind + "-" + offset.String()
	r.AddRow("summary", map[string]float64{"p99_ns": 1000, "throughput_rps": 500})
	return r
}

func TestAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := Open(filepath.Join(dir, "trajectory"))
	if recs, warns, err := s.Load(); err != nil || len(recs) != 0 || len(warns) != 0 {
		t.Fatalf("empty store load = %v, %v, %v; want empty", recs, warns, err)
	}
	r1 := rec(t, "load", "open", 0)
	r2 := rec(t, "load", "open", time.Hour)
	r3 := rec(t, "bench", "", 30*time.Minute)
	// Append out of order; Load must sort by start time across files.
	for _, r := range []*perfobs.Record{r2, r3, r1} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	recs, warns, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("unexpected warnings: %v", warns)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	gotOrder := []string{recs[0].RunID, recs[1].RunID, recs[2].RunID}
	wantOrder := []string{r1.RunID, r3.RunID, r2.RunID}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("order %v, want %v", gotOrder, wantOrder)
		}
	}
	if got := recs[0].FindRow("summary"); got == nil || got.Metrics["p99_ns"] != 1000 {
		t.Fatalf("row lost in round trip: %+v", recs[0].Rows)
	}
	if recs[0].Host.CPUModel != "testcpu" || recs[0].Commit != "abc1234" {
		t.Fatalf("provenance lost: %+v", recs[0])
	}
	// Two kinds → two files.
	for _, kind := range []string{"load", "bench"} {
		if _, err := os.Stat(s.fileFor(kind)); err != nil {
			t.Fatalf("missing %s file: %v", kind, err)
		}
	}
}

func TestLoadSkipsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)
	if err := s.Append(rec(t, "load", "open", 0)); err != nil {
		t.Fatal(err)
	}
	// Simulate a bad merge: garbage line between two good ones.
	f, err := os.OpenFile(s.fileFor("load"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{broken json\n<<<<<<< HEAD\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := s.Append(rec(t, "load", "open", time.Hour)); err != nil {
		t.Fatal(err)
	}
	recs, warns, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2 despite corruption", len(recs))
	}
	if len(warns) != 2 {
		t.Fatalf("warnings %v, want 2 (one per corrupt line)", warns)
	}
	if !strings.Contains(warns[0], "load.jsonl:2") {
		t.Fatalf("warning lacks file:line: %q", warns[0])
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	s := Open(t.TempDir())
	bad := rec(t, "load", "", 0)
	bad.Kind = "../escape"
	if err := s.Append(bad); err == nil {
		t.Fatal("append accepted a path-unsafe kind")
	}
	bad2 := rec(t, "load", "", 0)
	bad2.RunID = ""
	if err := s.Append(bad2); err == nil {
		t.Fatal("append accepted an empty run_id")
	}
}

func TestParseRecordRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "null", "42", `{"kind":""}`, `{"kind":"x"}`, "{"} {
		if _, err := ParseRecord([]byte(bad)); err == nil {
			t.Errorf("ParseRecord(%q) accepted invalid input", bad)
		}
	}
	good := `{"run_id":"r1","kind":"bench","rows":[{"name":"a","metrics":{"x":1}}],"future_field":true}`
	rec, err := ParseRecord([]byte(good))
	if err != nil {
		t.Fatalf("ParseRecord rejected forward-compatible record: %v", err)
	}
	if rec.Rows[0].Metrics["x"] != 1 {
		t.Fatalf("metrics lost: %+v", rec)
	}
}
