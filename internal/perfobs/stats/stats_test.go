package stats

import "testing"

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Input must not be reordered.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Errorf("Median reordered its input: %v", in)
	}
}

func TestBandCompareLowerIsBetter(t *testing.T) {
	b := Band{Tolerance: 2.0}
	cases := []struct {
		base, cur float64
		want      Verdict
	}{
		{100, 100, Within},
		{100, 199, Within},
		{100, 201, Regressed},
		{100, 51, Within},
		{100, 49, Improved},
		{0, 50, Within},  // no ratio from a zero baseline
		{-1, 50, Within}, // or a negative one
	}
	for _, c := range cases {
		if got := b.Compare(c.base, c.cur, LowerIsBetter); got != c.want {
			t.Errorf("Compare(%v, %v, lower) = %v, want %v", c.base, c.cur, got, c.want)
		}
	}
}

func TestBandCompareHigherIsBetter(t *testing.T) {
	b := Band{Tolerance: 2.0}
	cases := []struct {
		base, cur float64
		want      Verdict
	}{
		{1000, 1000, Within},
		{1000, 501, Within},
		{1000, 499, Regressed},
		{1000, 2001, Improved},
	}
	for _, c := range cases {
		if got := b.Compare(c.base, c.cur, HigherIsBetter); got != c.want {
			t.Errorf("Compare(%v, %v, higher) = %v, want %v", c.base, c.cur, got, c.want)
		}
	}
}

func TestBandDefaultTolerance(t *testing.T) {
	// A zero/absurd tolerance falls back to the default rather than flagging
	// every measurement.
	for _, tl := range []float64{0, 0.5, 1.0, -3} {
		b := Band{Tolerance: tl}
		if got := b.Compare(100, 100*DefaultTolerance*0.99, LowerIsBetter); got != Within {
			t.Errorf("tolerance %v: just-inside-default measurement = %v, want Within", tl, got)
		}
		if got := b.Compare(100, 100*DefaultTolerance*1.01, LowerIsBetter); got != Regressed {
			t.Errorf("tolerance %v: outside-default measurement = %v, want Regressed", tl, got)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	if Within.String() != "ok" || Improved.String() != "improved" || Regressed.String() != "REGRESSED" {
		t.Errorf("unexpected verdict strings: %v %v %v", Within, Improved, Regressed)
	}
	if LowerIsBetter.String() == HigherIsBetter.String() {
		t.Error("directions render identically")
	}
}
