// Package stats holds the small statistics kit the perf gates share: medians
// over repeated measurements and a multiplicative tolerance band that turns a
// (baseline, current) pair into a three-way verdict. Both `leabench -gate`
// and `leaperf -regress` judge regressions through exactly this code, so the
// two gates cannot drift apart on what "confidently worse" means.
//
// The confidence model is deliberately simple and robust: a baseline is the
// median of N independent measurements (the median discards one-off scheduler
// or GC outliers without assuming a distribution), and a measurement only
// counts as a regression when it lands outside a generous multiplicative band
// around that median. Anything inside the band is noise by definition;
// anything outside it in the good direction is an improvement worth noticing
// but never a failure.
package stats

import "sort"

// Direction says which way a metric improves: latencies and footprints go
// down, throughputs and hit ratios go up.
type Direction int

// The two metric polarities.
const (
	// LowerIsBetter marks metrics like latency, ns/op, allocs and RSS.
	LowerIsBetter Direction = iota
	// HigherIsBetter marks metrics like throughput and warm-hit ratio.
	HigherIsBetter
)

// String renders the direction for reports.
func (d Direction) String() string {
	if d == HigherIsBetter {
		return "higher-is-better"
	}
	return "lower-is-better"
}

// Verdict classifies a measurement against a banded baseline.
type Verdict int

// The three verdicts Compare can reach.
const (
	// Within means the measurement is inside the tolerance band: noise.
	Within Verdict = iota
	// Improved means outside the band in the good direction.
	Improved
	// Regressed means outside the band in the bad direction — the only
	// verdict a gate fails on.
	Regressed
)

// String renders the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case Improved:
		return "improved"
	case Regressed:
		return "REGRESSED"
	default:
		return "ok"
	}
}

// Band is a multiplicative tolerance band around a baseline value: a
// measurement must move by more than a factor of Tolerance (in either
// direction) before it stops counting as noise. Tolerances at or below 1
// select DefaultTolerance.
type Band struct {
	// Tolerance is the band half-width as a ratio, e.g. 2.0 = "within 2× of
	// the baseline either way".
	Tolerance float64
}

// DefaultTolerance is the band applied when none is configured: generous
// enough that run-to-run noise on a shared machine stays inside it, tight
// enough that a genuine 5× regression cannot hide. It must sit strictly
// above 2: the serving stack's latency quantiles come from power-of-two
// histogram buckets, so pure quantization jitter moves them in exact 2×
// steps — a 2.0 band would flag a one-bucket wobble as a regression, while
// 2.5 absorbs one bucket and still fails a genuine two-bucket (4×) move.
const DefaultTolerance = 2.5

// tol returns the effective tolerance.
func (b Band) tol() float64 {
	if b.Tolerance <= 1 {
		return DefaultTolerance
	}
	return b.Tolerance
}

// Compare judges cur against base under the band, direction-aware. A
// non-positive baseline cannot anchor a ratio, so it always yields Within —
// gates that care about exact zeroes (the strict zero-alloc rule in
// `leabench -gate`) special-case them before calling Compare.
func (b Band) Compare(base, cur float64, dir Direction) Verdict {
	if base <= 0 {
		return Within
	}
	t := b.tol()
	worse, better := cur > base*t, cur < base/t
	if dir == HigherIsBetter {
		worse, better = cur < base/t, cur > base*t
	}
	switch {
	case worse:
		return Regressed
	case better:
		return Improved
	default:
		return Within
	}
}

// Median returns the median of xs (the mean of the middle two for an even
// count), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
