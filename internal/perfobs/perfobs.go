// Package perfobs is the schema layer of the continuous perf-observability
// subsystem: the append-only trajectory Record every perf tool in the repo
// emits (leabench benchmark snapshots, leaload run reports, the leaperf
// collector's time-series summaries, the CI smoke), plus the provenance each
// record carries — commit hash, dirty flag, Go version and a host
// fingerprint — so a stored number is attributable to the code and machine
// that produced it instead of being a context-free point-in-time snapshot.
//
// The sub-packages divide the subsystem: perfobs/stats is the shared
// median/tolerance-band verdict kit, perfobs/store appends and merges JSONL
// records under trajectory/, perfobs/collector scrapes a running leaserved's
// /metrics into typed samples, and perfobs/report renders trend tables and
// banded regression verdicts over the stored history. cmd/leaperf fronts the
// whole stack.
package perfobs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Record is one run's entry in the append-only trajectory: provenance plus a
// flat list of named metric rows. Records are written one-per-line as JSONL
// by perfobs/store; unknown fields are ignored on read, so the schema can
// grow without breaking stored history.
type Record struct {
	// RunID uniquely names this run (timestamp plus random suffix).
	RunID string `json:"run_id"`
	// Commit is the git commit hash the run was built from ("unknown" when
	// git is unavailable).
	Commit string `json:"commit"`
	// Dirty reports uncommitted changes in the working tree at run time.
	Dirty bool `json:"dirty"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// Host fingerprints the producing machine; regression gates only compare
	// records whose fingerprints match, because cross-host perf deltas are
	// hardware, not regressions.
	Host Host `json:"host_fingerprint"`
	// StartedAt is the run's UTC start time.
	StartedAt time.Time `json:"started_at"`
	// Kind buckets records into trend families: "bench", "load", "smoke", …
	// Each kind gets its own JSONL file under trajectory/.
	Kind string `json:"kind"`
	// Label distinguishes scenarios within a kind (e.g. a load record's loop/
	// distribution/rate); trends and gates only ever compare rows across
	// records sharing kind and label.
	Label string `json:"label,omitempty"`
	// Rows carries the run's measurements, one named row per benchmark /
	// sweep stage / series.
	Rows []Row `json:"rows"`
}

// Row is one named measurement bundle inside a Record: a benchmark name with
// its ns/allocs/bytes, a load summary with its throughput and quantiles, or a
// collector series with its first/last/min/max.
type Row struct {
	// Name identifies the row within its record ("sweep_warm", "summary",
	// "proc_rss_bytes", …).
	Name string `json:"name"`
	// Metrics maps metric name to value; perfobs/report decides per name
	// whether lower or higher is better.
	Metrics map[string]float64 `json:"metrics"`
}

// Host is the machine fingerprint stored with every record: enough to decide
// whether two records' numbers are comparable at all.
type Host struct {
	// OS and Arch are GOOS/GOARCH of the producing binary.
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// GOMAXPROCS is the scheduler width the run used.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// CPUModel is the model string from /proc/cpuinfo when readable, else "".
	CPUModel string `json:"cpu_model,omitempty"`
}

// Key reduces the fingerprint to the comparability class regression gates
// group by: same OS/arch, same CPU model, same scheduler width.
func (h Host) Key() string {
	return fmt.Sprintf("%s/%s p%d cpu=%s", h.OS, h.Arch, h.GOMAXPROCS, h.CPUModel)
}

// Meta is the provenance block shared by every emitter: what CollectMeta
// gathers once per process and each record copies.
type Meta struct {
	// Commit and Dirty locate the run in history ("unknown"/false when the
	// producing directory is not a git checkout).
	Commit string `json:"commit"`
	Dirty  bool   `json:"dirty"`
	// GoVersion is runtime.Version().
	GoVersion string `json:"go_version"`
	// Host fingerprints the machine.
	Host Host `json:"host_fingerprint"`
}

// CollectMeta gathers provenance for the current process: commit and dirty
// flag via git (best-effort — "unknown" and clean when git or the repo is
// unavailable), Go version from the runtime, and the host fingerprint.
func CollectMeta() Meta {
	m := Meta{
		Commit:    "unknown",
		GoVersion: runtime.Version(),
		Host: Host{
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			CPUModel:   cpuModel(),
		},
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if c := strings.TrimSpace(string(out)); c != "" {
			m.Commit = c
		}
	}
	if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		m.Dirty = strings.TrimSpace(string(out)) != ""
	}
	return m
}

// cpuModel reads the first "model name" line from /proc/cpuinfo; "" when the
// file is unreadable (non-Linux hosts).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// NewRecord builds a record skeleton for kind/label stamped with meta and the
// current time; the caller fills Rows and hands it to a store.
func NewRecord(kind, label string, meta Meta) *Record {
	now := time.Now().UTC()
	return &Record{
		RunID:     newRunID(now),
		Commit:    meta.Commit,
		Dirty:     meta.Dirty,
		GoVersion: meta.GoVersion,
		Host:      meta.Host,
		StartedAt: now,
		Kind:      kind,
		Label:     label,
	}
}

// newRunID builds a readable, collision-resistant run identifier:
// UTC timestamp plus four random bytes.
func newRunID(now time.Time) string {
	var suffix [4]byte
	// crypto/rand cannot fail on the supported platforms; a zero suffix on a
	// hypothetical failure still leaves the timestamp distinguishing runs.
	_, _ = rand.Read(suffix[:])
	return now.Format("20060102T150405") + "-" + hex.EncodeToString(suffix[:])
}

// Validate checks the invariants every stored record must satisfy; the store
// refuses to append and the parser refuses to accept records that fail it.
func (r *Record) Validate() error {
	if r.Kind == "" {
		return fmt.Errorf("perfobs: record has no kind")
	}
	if strings.ContainsAny(r.Kind, "/\\ \t\n") {
		return fmt.Errorf("perfobs: kind %q must be a bare file-name-safe token", r.Kind)
	}
	if r.RunID == "" {
		return fmt.Errorf("perfobs: record has no run_id")
	}
	return nil
}

// AddRow appends a named metric row, copying the map so callers can reuse
// their scratch.
func (r *Record) AddRow(name string, metrics map[string]float64) {
	m := make(map[string]float64, len(metrics))
	for k, v := range metrics {
		m[k] = v
	}
	r.Rows = append(r.Rows, Row{Name: name, Metrics: m})
}

// FindRow returns the first row with the given name, or nil.
func (r *Record) FindRow(name string) *Row {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}
